package dist

import (
	"errors"
	"math"
	"math/rand/v2"
	"sort"

	"idlereduce/internal/numeric"
)

// ErrNoData is returned when an empirical distribution is built from an
// empty sample.
var ErrNoData = errors.New("dist: empirical distribution needs at least one observation")

// Empirical is the empirical distribution of an observed sample: the
// per-vehicle stop-length records that Section 5 evaluates policies on.
// CDF is the right-continuous step ECDF; Sample draws uniformly from the
// observations (a bootstrap draw).
type Empirical struct {
	sorted []float64
	mean   float64
}

// NewEmpirical copies and sorts the sample. Negative observations are
// rejected — stop lengths cannot be negative.
func NewEmpirical(sample []float64) (*Empirical, error) {
	if len(sample) == 0 {
		return nil, ErrNoData
	}
	s := append([]float64(nil), sample...)
	for _, v := range s {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("dist: empirical sample must be finite and non-negative")
		}
	}
	sort.Float64s(s)
	return &Empirical{sorted: s, mean: numeric.SumSlice(s) / float64(len(s))}, nil
}

// N returns the sample size.
func (e *Empirical) N() int { return len(e.sorted) }

// Values returns a copy of the sorted observations.
func (e *Empirical) Values() []float64 {
	return append([]float64(nil), e.sorted...)
}

// PDF implements Distribution. An ECDF has no density; 0 is reported and
// the mass lives in the CDF steps.
func (e *Empirical) PDF(x float64) float64 { return 0 }

// CDF implements Distribution: the fraction of observations <= x.
func (e *Empirical) CDF(x float64) float64 {
	// First index with value > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile implements Distribution using the inverse-ECDF (type-1)
// definition.
func (e *Empirical) Quantile(p float64) float64 {
	n := len(e.sorted)
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[n-1]
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return e.sorted[i]
}

// Mean implements Distribution.
func (e *Empirical) Mean() float64 { return e.mean }

// Sample implements Distribution: one observation uniformly at random.
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	return e.sorted[rng.IntN(len(e.sorted))]
}

// partialMean averages the observations in (0, b]: the plug-in estimator
// of mu_B- used when a policy must estimate its statistics from data.
func (e *Empirical) partialMean(b float64) float64 {
	var sum numeric.KahanSum
	for _, v := range e.sorted {
		if v > b {
			break
		}
		sum.Add(v)
	}
	return sum.Sum() / float64(len(e.sorted))
}

// Max returns the largest observation.
func (e *Empirical) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Min returns the smallest observation.
func (e *Empirical) Min() float64 { return e.sorted[0] }
