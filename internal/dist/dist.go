// Package dist models the stop-length distributions q(y) that drive the
// idling-reduction problem: parametric families (exponential, uniform,
// lognormal, Weibull, Pareto), point masses and finite mixtures for the
// adversarial distributions of Sections 3-4, transforms (truncation, mean
// scaling) used by the traffic sweeps of Figures 5-6, and empirical
// distributions backed by observed samples.
//
// All distributions are supported on [0, +inf) — stop lengths are
// non-negative — and expose the constrained ski-rental statistics
// mu_B- and q_B+ through MuBMinus and QBPlus.
package dist

import (
	"math"
	"math/rand/v2"

	"idlereduce/internal/numeric"
)

// Distribution is a univariate distribution of non-negative stop lengths.
type Distribution interface {
	// PDF returns the density at x. Distributions with atoms report the
	// density of the continuous part only; CDF carries the atoms.
	PDF(x float64) float64
	// CDF returns P(Y <= x).
	CDF(x float64) float64
	// Quantile returns inf{x : CDF(x) >= p} for p in [0, 1].
	Quantile(p float64) float64
	// Mean returns E[Y].
	Mean() float64
	// Sample draws one variate using rng.
	Sample(rng *rand.Rand) float64
}

// MuBMinus returns the partial expectation mu_B- = ∫_0^B y q(y) dy
// (paper eq. 10): the contribution of short stops to the mean. Atoms at 0
// contribute nothing; an atom exactly at B counts as short, matching the
// paper's closed-interval convention cost_offline(B) = B.
func MuBMinus(d Distribution, b float64) float64 {
	if b <= 0 {
		return 0
	}
	if pm, ok := d.(interface {
		partialMean(b float64) float64
	}); ok {
		return pm.partialMean(b)
	}
	// Integrate y·pdf over the continuous part; add any atoms below B by
	// probing CDF jumps is unnecessary for the library's continuous
	// families, so quadrature suffices here.
	v, err := numeric.IntegrateSimpson(func(y float64) float64 {
		return y * d.PDF(y)
	}, 0, b, 1e-10)
	if err != nil {
		// Fall back to a dense fixed rule on rough densities.
		v = numeric.IntegrateN(func(y float64) float64 { return y * d.PDF(y) }, 0, b, 1<<14)
	}
	return v
}

// QBPlus returns q_B+ = P(Y > B) (paper eq. 11): the probability of a long
// stop.
func QBPlus(d Distribution, b float64) float64 {
	if b <= 0 {
		return 1
	}
	q := 1 - d.CDF(b)
	return numeric.Clamp(q, 0, 1)
}

// quantileByBisection inverts a CDF numerically on [0, hi], growing hi
// geometrically until it brackets p.
func quantileByBisection(cdf func(float64) float64, p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	hi := 1.0
	for i := 0; cdf(hi) < p && i < 1200; i++ {
		hi *= 2
	}
	x, err := numeric.Bisect(func(x float64) float64 { return cdf(x) - p }, 0, hi, 1e-12*hi)
	if err != nil {
		return hi
	}
	return x
}
