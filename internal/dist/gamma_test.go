package dist

import (
	"math"
	"testing"

	"idlereduce/internal/numeric"
)

func TestGammaBasics(t *testing.T) {
	d := Gamma{K: 2.5, Theta: 12}
	checkDistributionBasics(t, "gamma", d, numeric.Linspace(0.01, 300, 200))
	if math.Abs(d.Mean()-30) > 1e-12 {
		t.Errorf("mean %v want 30", d.Mean())
	}
}

func TestGammaShapeOneIsExponential(t *testing.T) {
	g := Gamma{K: 1, Theta: 20}
	e := NewExponentialMean(20)
	for _, x := range []float64{0.5, 5, 20, 80} {
		if math.Abs(g.CDF(x)-e.CDF(x)) > 1e-10 {
			t.Errorf("CDF(%v): gamma %v exp %v", x, g.CDF(x), e.CDF(x))
		}
		if math.Abs(g.PDF(x)-e.PDF(x)) > 1e-10 {
			t.Errorf("PDF(%v): gamma %v exp %v", x, g.PDF(x), e.PDF(x))
		}
	}
	if g.PDF(0) != e.PDF(0) {
		t.Errorf("PDF(0): %v vs %v", g.PDF(0), e.PDF(0))
	}
}

func TestGammaPDFBoundary(t *testing.T) {
	if got := (Gamma{K: 0.5, Theta: 1}).PDF(0); !math.IsInf(got, 1) {
		t.Errorf("K<1 at 0: %v", got)
	}
	if got := (Gamma{K: 2, Theta: 1}).PDF(0); got != 0 {
		t.Errorf("K>1 at 0: %v", got)
	}
	if got := (Gamma{K: 2, Theta: 1}).PDF(-1); got != 0 {
		t.Errorf("negative x: %v", got)
	}
}

func TestGammaPDFIntegratesToCDF(t *testing.T) {
	d := Gamma{K: 3, Theta: 8}
	for _, x := range []float64{5, 24, 80} {
		integ := numeric.Integrate(d.PDF, 1e-12, x)
		if math.Abs(integ-d.CDF(x)) > 1e-7 {
			t.Errorf("∫pdf to %v = %v, CDF = %v", x, integ, d.CDF(x))
		}
	}
}

func TestGammaSamplingMoments(t *testing.T) {
	// Mean and variance of samples match K·Theta and K·Theta² for shapes
	// both below and above 1 (the two sampler branches).
	rng := newRNG(17)
	for _, g := range []Gamma{{K: 0.6, Theta: 10}, {K: 4, Theta: 5}} {
		const n = 300_000
		var sum, sq float64
		for i := 0; i < n; i++ {
			v := g.Sample(rng)
			if v < 0 {
				t.Fatalf("negative sample %v", v)
			}
			sum += v
			sq += v * v
		}
		m := sum / n
		variance := sq/n - m*m
		if math.Abs(m-g.Mean()) > 0.02*g.Mean() {
			t.Errorf("K=%v: sample mean %v want %v", g.K, m, g.Mean())
		}
		wantVar := g.K * g.Theta * g.Theta
		if math.Abs(variance-wantVar) > 0.05*wantVar {
			t.Errorf("K=%v: sample variance %v want %v", g.K, variance, wantVar)
		}
	}
}

func TestGammaPartialMeanMatchesQuadrature(t *testing.T) {
	d := Gamma{K: 2.2, Theta: 14}
	for _, b := range []float64{10, 28, 47, 150} {
		closed := MuBMinus(d, b)
		quad := numeric.Integrate(func(y float64) float64 { return y * d.PDF(y) }, 1e-12, b)
		if math.Abs(closed-quad) > 1e-6*(1+quad) {
			t.Errorf("B=%v: closed %v quadrature %v", b, closed, quad)
		}
	}
}

func TestNewGammaMeanCV(t *testing.T) {
	d := NewGammaMeanCV(40, 0.5)
	if math.Abs(d.Mean()-40) > 1e-12 {
		t.Errorf("mean %v", d.Mean())
	}
	// cv = sqrt(var)/mean = 1/sqrt(K).
	if math.Abs(1/math.Sqrt(d.K)-0.5) > 1e-12 {
		t.Errorf("cv wrong: K = %v", d.K)
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic for bad params")
		}
	}()
	NewGammaMeanCV(0, 1)
}

func TestGammaRegularizedIdentities(t *testing.T) {
	// P + Q = 1 across regimes.
	for _, a := range []float64{0.3, 1, 4, 20} {
		for _, x := range []float64{0.1, 1, 5, 40} {
			p := numeric.LowerGammaRegularized(a, x)
			q := numeric.UpperGammaRegularized(a, x)
			if math.Abs(p+q-1) > 1e-12 {
				t.Errorf("a=%v x=%v: P+Q = %v", a, x, p+q)
			}
		}
	}
	if !math.IsNaN(numeric.LowerGammaRegularized(-1, 1)) {
		t.Error("negative shape should be NaN")
	}
	if numeric.LowerGammaRegularized(2, 0) != 0 || numeric.UpperGammaRegularized(2, 0) != 1 {
		t.Error("x=0 boundary wrong")
	}
}
