package dist

import (
	"math"
	"math/rand/v2"
)

// Scaled is a distribution Y = Factor · Base. The traffic sweeps of
// Figures 5-6 generate "the Chicago shape scaled to a target mean" exactly
// this way.
type Scaled struct {
	Base   Distribution
	Factor float64
}

// NewScaledToMean rescales base so its mean becomes target.
func NewScaledToMean(base Distribution, target float64) Scaled {
	m := base.Mean()
	if m <= 0 || math.IsInf(m, 0) {
		panic("dist: cannot rescale a distribution without a positive finite mean")
	}
	return Scaled{Base: base, Factor: target / m}
}

// PDF implements Distribution.
func (s Scaled) PDF(x float64) float64 {
	return s.Base.PDF(x/s.Factor) / s.Factor
}

// CDF implements Distribution.
func (s Scaled) CDF(x float64) float64 {
	return s.Base.CDF(x / s.Factor)
}

// Quantile implements Distribution.
func (s Scaled) Quantile(p float64) float64 {
	return s.Factor * s.Base.Quantile(p)
}

// Mean implements Distribution.
func (s Scaled) Mean() float64 { return s.Factor * s.Base.Mean() }

// Sample implements Distribution.
func (s Scaled) Sample(rng *rand.Rand) float64 {
	return s.Factor * s.Base.Sample(rng)
}

// partialMean delegates with rescaled cutoff: ∫_0^b y q_s(y) dy =
// Factor·∫_0^{b/Factor} u q(u) du.
func (s Scaled) partialMean(b float64) float64 {
	return s.Factor * MuBMinus(s.Base, b/s.Factor)
}

// Truncated restricts Base to [0, Hi], renormalizing; mass above Hi is
// discarded. Used to cap synthetic stop lengths at a trace horizon.
type Truncated struct {
	Base Distribution
	Hi   float64
	mass float64 // CDF(Hi), cached
}

// NewTruncated truncates base to [0, hi].
func NewTruncated(base Distribution, hi float64) *Truncated {
	if hi <= 0 {
		panic("dist: truncation bound must be positive")
	}
	m := base.CDF(hi)
	if m <= 0 {
		panic("dist: truncation removes all mass")
	}
	return &Truncated{Base: base, Hi: hi, mass: m}
}

// PDF implements Distribution.
func (t *Truncated) PDF(x float64) float64 {
	if x < 0 || x > t.Hi {
		return 0
	}
	return t.Base.PDF(x) / t.mass
}

// CDF implements Distribution.
func (t *Truncated) CDF(x float64) float64 {
	if x >= t.Hi {
		return 1
	}
	if x < 0 {
		return 0
	}
	return t.Base.CDF(x) / t.mass
}

// Quantile implements Distribution.
func (t *Truncated) Quantile(p float64) float64 {
	if p >= 1 {
		return t.Hi
	}
	if p <= 0 {
		return 0
	}
	// Clamp to the truncation bound: the base quantile can land
	// (barely) above Hi from round-off near CDF(Hi), or at +Inf when
	// an extreme-parameter base overflows, and the truncated support
	// is [0, Hi] by contract either way.
	if x := t.Base.Quantile(p * t.mass); x < t.Hi {
		return x
	}
	return t.Hi
}

// Mean implements Distribution.
func (t *Truncated) Mean() float64 {
	return MuBMinus(t.Base, t.Hi) / t.mass
}

// Sample implements Distribution. Inverse-transform keeps sampling exact
// under truncation.
func (t *Truncated) Sample(rng *rand.Rand) float64 {
	return t.Quantile(rng.Float64())
}
