package dist

import (
	"math"
	"math/rand/v2"

	"idlereduce/internal/numeric"
)

// Gamma is the gamma distribution with shape K and scale Theta
// (mean K·Theta). Queue waits behind k vehicles discharging at
// exponential headways are Gamma(k, headway) — the natural refinement of
// the drive-cycle model's exponential waits.
type Gamma struct {
	K, Theta float64
}

// NewGammaMeanCV builds a gamma distribution with the given mean and
// coefficient of variation: K = 1/cv², Theta = mean·cv².
func NewGammaMeanCV(mean, cv float64) Gamma {
	if mean <= 0 || cv <= 0 {
		panic("dist: gamma mean and cv must be positive")
	}
	k := 1 / (cv * cv)
	return Gamma{K: k, Theta: mean / k}
}

// PDF implements Distribution.
func (g Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case g.K < 1:
			return math.Inf(1)
		case g.K == 1:
			return 1 / g.Theta
		default:
			return 0
		}
	}
	lg, _ := math.Lgamma(g.K)
	logp := (g.K-1)*math.Log(x) - x/g.Theta - g.K*math.Log(g.Theta) - lg
	return math.Exp(logp)
}

// CDF implements Distribution via the regularized lower incomplete gamma.
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return numeric.LowerGammaRegularized(g.K, x/g.Theta)
}

// Quantile implements Distribution by numeric inversion.
func (g Gamma) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return quantileByBisection(g.CDF, p)
}

// Mean implements Distribution.
func (g Gamma) Mean() float64 { return g.K * g.Theta }

// Sample implements Distribution with the Marsaglia-Tsang squeeze method
// (boosted for shape < 1).
func (g Gamma) Sample(rng *rand.Rand) float64 {
	k := g.K
	boost := 1.0
	if k < 1 {
		// Gamma(k) = Gamma(k+1) · U^{1/k}.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		boost = math.Pow(u, 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v * g.Theta
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v * g.Theta
		}
	}
}

// partialMean: ∫_0^b y·pdf dy = K·Theta·P(K+1, b/Theta) via the identity
// for the gamma partial expectation.
func (g Gamma) partialMean(b float64) float64 {
	if b <= 0 {
		return 0
	}
	return g.K * g.Theta * numeric.LowerGammaRegularized(g.K+1, b/g.Theta)
}
