package dist

import (
	"math"
	"testing"
)

func TestPointMassBasics(t *testing.T) {
	p := PointMass{At: 30}
	if p.CDF(29.999) != 0 || p.CDF(30) != 1 {
		t.Error("CDF step wrong")
	}
	if p.Mean() != 30 || p.Quantile(0.5) != 30 {
		t.Error("mean/quantile wrong")
	}
	rng := newRNG(1)
	if p.Sample(rng) != 30 {
		t.Error("sample wrong")
	}
}

func TestPointMassPartialMean(t *testing.T) {
	// Atom at B counts as a short stop (closed interval convention).
	p := PointMass{At: 28}
	if got := MuBMinus(p, 28); got != 28 {
		t.Errorf("atom at B: mu = %v, want 28", got)
	}
	if got := MuBMinus(p, 27); got != 0 {
		t.Errorf("atom above B: mu = %v, want 0", got)
	}
	if got := MuBMinus(PointMass{At: 0}, 28); got != 0 {
		t.Errorf("atom at 0: mu = %v, want 0", got)
	}
}

func TestMixtureNormalization(t *testing.T) {
	m := NewMixture(
		Component{W: 2, D: PointMass{At: 10}},
		Component{W: 6, D: PointMass{At: 50}},
	)
	comps := m.Components()
	if math.Abs(comps[0].W-0.25) > 1e-12 || math.Abs(comps[1].W-0.75) > 1e-12 {
		t.Errorf("weights %v %v", comps[0].W, comps[1].W)
	}
	if math.Abs(m.Mean()-(0.25*10+0.75*50)) > 1e-12 {
		t.Errorf("mean %v", m.Mean())
	}
}

func TestMixtureDropsZeroWeights(t *testing.T) {
	m := NewMixture(
		Component{W: 0, D: PointMass{At: 1}},
		Component{W: 1, D: PointMass{At: 2}},
	)
	if len(m.Components()) != 1 {
		t.Errorf("zero-weight component kept")
	}
}

func TestMixturePanicsOnBadInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative": func() { NewMixture(Component{W: -1, D: PointMass{}}) },
		"empty":    func() { NewMixture() },
		"nil":      func() { NewMixture(Component{W: 1, D: nil}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTwoPointAdversary(t *testing.T) {
	// The Section 4 adversary: short stop with prob 1-q, long with prob q.
	const B = 28.0
	m := TwoPoint(5, 100, 0.3)
	if math.Abs(QBPlus(m, B)-0.3) > 1e-12 {
		t.Errorf("q_B+ = %v, want 0.3", QBPlus(m, B))
	}
	if math.Abs(MuBMinus(m, B)-0.7*5) > 1e-12 {
		t.Errorf("mu_B- = %v, want 3.5", MuBMinus(m, B))
	}
}

func TestMixtureSampleFrequencies(t *testing.T) {
	m := TwoPoint(1, 9, 0.25)
	rng := newRNG(42)
	const n = 100_000
	long := 0
	for i := 0; i < n; i++ {
		if m.Sample(rng) == 9 {
			long++
		}
	}
	got := float64(long) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("long fraction %v, want 0.25", got)
	}
}

func TestMixtureQuantileWithAtoms(t *testing.T) {
	m := TwoPoint(10, 100, 0.4)
	// Quantile below 0.6 must land at the short atom, above at the long.
	if q := m.Quantile(0.3); math.Abs(q-10) > 1e-6 {
		t.Errorf("Quantile(0.3) = %v", q)
	}
	if q := m.Quantile(0.8); math.Abs(q-100) > 1e-4 {
		t.Errorf("Quantile(0.8) = %v", q)
	}
}

func TestMixtureContinuousComponents(t *testing.T) {
	m := NewMixture(
		Component{W: 0.7, D: NewExponentialMean(20)},
		Component{W: 0.3, D: Pareto{Xm: 60, Alpha: 2}},
	)
	checkDistributionBasics(t, "exp+pareto mixture", m, []float64{0, 1, 5, 10, 30, 60, 100, 500})
}

func TestMixturePartialMeanMatchesQuadrature(t *testing.T) {
	m := NewMixture(
		Component{W: 0.6, D: NewExponentialMean(15)},
		Component{W: 0.4, D: PointMass{At: 100}},
	)
	const B = 47.0
	got := MuBMinus(m, B)
	// Continuous contribution only by quadrature; the atom is above B.
	e := NewExponentialMean(15)
	want := 0.6 * MuBMinus(e, B)
	if math.Abs(got-want) > 1e-8 {
		t.Errorf("mu_B- = %v, want %v", got, want)
	}
}

func TestPointMassPDFIsZero(t *testing.T) {
	// Atom mass lives in the CDF jump; the density is reported as 0.
	if got := (PointMass{At: 5}).PDF(5); got != 0 {
		t.Errorf("PDF at atom = %v", got)
	}
}

func TestMixtureQuantileBounds(t *testing.T) {
	m := TwoPoint(2, 9, 0.5)
	if q := m.Quantile(0); q != 0 {
		t.Errorf("Quantile(0) = %v", q)
	}
	// Quantile(1) reports the max of component suprema: the larger atom.
	if q := m.Quantile(1); q != 9 {
		t.Errorf("Quantile(1) = %v want 9", q)
	}
}
