package dist

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpiricalBasics(t *testing.T) {
	e, err := NewEmpirical([]float64{5, 1, 3, 3, 8})
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 5 {
		t.Errorf("N = %d", e.N())
	}
	if e.Min() != 1 || e.Max() != 8 {
		t.Errorf("min/max %v/%v", e.Min(), e.Max())
	}
	if math.Abs(e.Mean()-4) > 1e-12 {
		t.Errorf("mean %v", e.Mean())
	}
}

func TestEmpiricalCDFSteps(t *testing.T) {
	e, _ := NewEmpirical([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.CDF(c.x); got != c.want {
			t.Errorf("CDF(%v) = %v want %v", c.x, got, c.want)
		}
	}
}

func TestEmpiricalQuantileType1(t *testing.T) {
	e, _ := NewEmpirical([]float64{10, 20, 30, 40})
	cases := []struct{ p, want float64 }{
		{0, 10}, {0.25, 10}, {0.26, 20}, {0.5, 20}, {0.75, 30}, {1, 40},
	}
	for _, c := range cases {
		if got := e.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%v) = %v want %v", c.p, got, c.want)
		}
	}
}

func TestEmpiricalErrors(t *testing.T) {
	if _, err := NewEmpirical(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("want ErrNoData, got %v", err)
	}
	if _, err := NewEmpirical([]float64{1, -2}); err == nil {
		t.Error("want error on negative observation")
	}
	if _, err := NewEmpirical([]float64{math.NaN()}); err == nil {
		t.Error("want error on NaN")
	}
	if _, err := NewEmpirical([]float64{math.Inf(1)}); err == nil {
		t.Error("want error on Inf")
	}
}

func TestEmpiricalDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	e, _ := NewEmpirical(in)
	in[0] = 999
	if e.Max() != 3 {
		t.Errorf("aliased input: max %v", e.Max())
	}
}

func TestEmpiricalPartialMean(t *testing.T) {
	e, _ := NewEmpirical([]float64{10, 20, 50, 100})
	// mu_B- at B=28: (10+20)/4 = 7.5.
	if got := MuBMinus(e, 28); math.Abs(got-7.5) > 1e-12 {
		t.Errorf("mu_B- = %v want 7.5", got)
	}
	// q_B+ at B=28: 2/4 = 0.5.
	if got := QBPlus(e, 28); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("q_B+ = %v want 0.5", got)
	}
}

func TestEmpiricalSampleFromData(t *testing.T) {
	e, _ := NewEmpirical([]float64{2, 4, 6})
	rng := newRNG(11)
	seen := map[float64]bool{}
	for i := 0; i < 1000; i++ {
		v := e.Sample(rng)
		if v != 2 && v != 4 && v != 6 {
			t.Fatalf("sample %v not in data", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Errorf("not all observations sampled: %v", seen)
	}
}

func TestEmpiricalQuantileCDFGalois(t *testing.T) {
	// Property (Galois connection): CDF(Quantile(p)) >= p for all p.
	prop := func(raw []uint16, pu uint16) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]float64, len(raw))
		for i, v := range raw {
			sample[i] = float64(v)
		}
		e, err := NewEmpirical(sample)
		if err != nil {
			return false
		}
		p := float64(pu) / math.MaxUint16
		return e.CDF(e.Quantile(p)) >= p-1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalValuesSorted(t *testing.T) {
	e, _ := NewEmpirical([]float64{9, 1, 5, 5, 0})
	vs := e.Values()
	if !sort.Float64sAreSorted(vs) {
		t.Errorf("Values not sorted: %v", vs)
	}
	vs[0] = 42 // must not corrupt internal state
	if e.Min() != 0 {
		t.Error("Values aliases internal storage")
	}
}

func TestEmpiricalPDFIsZero(t *testing.T) {
	e, _ := NewEmpirical([]float64{1, 2})
	if e.PDF(1) != 0 {
		t.Error("ECDF has no density")
	}
}
