package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"idlereduce/internal/numeric"
)

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// checkDistributionBasics verifies the invariants every Distribution must
// satisfy: PDF >= 0, CDF monotone in [0,1], Quantile inverts CDF, sample
// mean approaches Mean.
func checkDistributionBasics(t *testing.T, name string, d Distribution, xs []float64) {
	t.Helper()
	prev := -1.0
	for _, x := range xs {
		if p := d.PDF(x); p < 0 || math.IsNaN(p) {
			t.Errorf("%s: PDF(%v) = %v", name, x, p)
		}
		c := d.CDF(x)
		if c < -1e-12 || c > 1+1e-12 || math.IsNaN(c) {
			t.Errorf("%s: CDF(%v) = %v out of [0,1]", name, x, c)
		}
		if c < prev-1e-12 {
			t.Errorf("%s: CDF not monotone at %v: %v < %v", name, x, c, prev)
		}
		prev = c
	}
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		q := d.Quantile(p)
		c := d.CDF(q)
		if math.Abs(c-p) > 1e-6 {
			t.Errorf("%s: CDF(Quantile(%v)) = %v", name, p, c)
		}
	}
	if m := d.Mean(); !math.IsInf(m, 0) {
		rng := newRNG(7)
		var sum numeric.KahanSum
		const n = 200_000
		for i := 0; i < n; i++ {
			sum.Add(d.Sample(rng))
		}
		got := sum.Sum() / n
		if math.Abs(got-m) > 0.03*(1+math.Abs(m)) {
			t.Errorf("%s: sample mean %v, analytic %v", name, got, m)
		}
	}
}

func TestExponentialBasics(t *testing.T) {
	d := NewExponentialMean(30)
	checkDistributionBasics(t, "exp", d, numeric.Linspace(0, 300, 100))
	if d.Mean() != 30 {
		t.Errorf("mean %v", d.Mean())
	}
}

func TestExponentialPartialMean(t *testing.T) {
	// partialMean must match the quadrature definition of mu_B-.
	d := NewExponentialMean(25)
	for _, b := range []float64{5, 28, 47, 200} {
		closed := MuBMinus(d, b)
		quad := numeric.Integrate(func(y float64) float64 { return y * d.PDF(y) }, 0, b)
		if math.Abs(closed-quad) > 1e-8 {
			t.Errorf("B=%v: closed %v vs quadrature %v", b, closed, quad)
		}
	}
}

func TestExponentialMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for non-positive mean")
		}
	}()
	NewExponentialMean(0)
}

func TestUniformBasics(t *testing.T) {
	d := Uniform{Lo: 10, Hi: 50}
	checkDistributionBasics(t, "uniform", d, numeric.Linspace(0, 60, 100))
	if d.Mean() != 30 {
		t.Errorf("mean %v", d.Mean())
	}
	if d.CDF(5) != 0 || d.CDF(55) != 1 {
		t.Error("support bounds wrong")
	}
	if d.Quantile(0) != 10 || d.Quantile(1) != 50 {
		t.Error("quantile bounds wrong")
	}
}

func TestLogNormalBasics(t *testing.T) {
	d := NewLogNormalMeanCV(40, 1.2)
	checkDistributionBasics(t, "lognormal", d, numeric.Linspace(0, 400, 200))
	if math.Abs(d.Mean()-40) > 1e-9 {
		t.Errorf("constructed mean %v, want 40", d.Mean())
	}
}

func TestLogNormalPDFIntegratesToCDF(t *testing.T) {
	d := LogNormal{Mu: 3, Sigma: 0.8}
	for _, x := range []float64{5, 20, 60} {
		integ := numeric.Integrate(d.PDF, 1e-12, x)
		if math.Abs(integ-d.CDF(x)) > 1e-6 {
			t.Errorf("∫pdf to %v = %v, CDF = %v", x, integ, d.CDF(x))
		}
	}
}

func TestWeibullBasics(t *testing.T) {
	d := Weibull{K: 0.9, Lambda: 35}
	checkDistributionBasics(t, "weibull", d, numeric.Linspace(0.01, 350, 200))
}

func TestWeibullShape1IsExponential(t *testing.T) {
	w := Weibull{K: 1, Lambda: 20}
	e := NewExponentialMean(20)
	for _, x := range []float64{0, 1, 10, 50, 100} {
		if math.Abs(w.CDF(x)-e.CDF(x)) > 1e-12 {
			t.Errorf("CDF mismatch at %v: %v vs %v", x, w.CDF(x), e.CDF(x))
		}
	}
	if math.Abs(w.Mean()-20) > 1e-9 {
		t.Errorf("mean %v", w.Mean())
	}
}

func TestParetoBasics(t *testing.T) {
	d := Pareto{Xm: 10, Alpha: 2.5}
	checkDistributionBasics(t, "pareto", d, numeric.Linspace(0, 500, 200))
	want := 2.5 * 10 / 1.5
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Errorf("mean %v want %v", d.Mean(), want)
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	d := Pareto{Xm: 1, Alpha: 0.9}
	if !math.IsInf(d.Mean(), 1) {
		t.Errorf("alpha<=1 should have infinite mean, got %v", d.Mean())
	}
}

func TestStdNormalQuantileRoundTrip(t *testing.T) {
	prop := func(u uint32) bool {
		p := (float64(u) + 1) / (float64(math.MaxUint32) + 2)
		z := stdNormalQuantile(p)
		return math.Abs(stdNormalCDF(z)-p) < 1e-10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStdNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.8413447460685429, 1},
	}
	for _, c := range cases {
		if got := stdNormalQuantile(c.p); math.Abs(got-c.z) > 1e-9 {
			t.Errorf("quantile(%v) = %v want %v", c.p, got, c.z)
		}
	}
}

func TestQBPlusClamped(t *testing.T) {
	d := NewExponentialMean(10)
	if q := QBPlus(d, -1); q != 1 {
		t.Errorf("negative B should give q=1, got %v", q)
	}
	if q := QBPlus(d, 1e6); q < 0 || q > 1e-10 {
		t.Errorf("huge B should give q≈0, got %v", q)
	}
}

func TestMuBMinusZeroCutoff(t *testing.T) {
	if v := MuBMinus(NewExponentialMean(10), 0); v != 0 {
		t.Errorf("mu_B- with B=0 should be 0, got %v", v)
	}
}

func TestMuBMinusPlusTailIdentity(t *testing.T) {
	// mu_B- + E[Y·1{Y>B}] = E[Y]; check via quadrature for lognormal.
	d := NewLogNormalMeanCV(30, 1.0)
	const b = 28.0
	mu := MuBMinus(d, b)
	tail := numeric.Integrate(func(y float64) float64 { return y * d.PDF(y) }, b, 5000)
	if math.Abs(mu+tail-d.Mean()) > 1e-3 {
		t.Errorf("mu_B-=%v + tail=%v != mean=%v", mu, tail, d.Mean())
	}
}

func TestQuantileBoundaryValues(t *testing.T) {
	// Every family must handle p <= 0 and p >= 1 without NaN.
	families := []struct {
		name string
		d    Distribution
		atHi float64 // expected Quantile(1): +Inf for unbounded support
	}{
		{"exp", NewExponentialMean(10), math.Inf(1)},
		{"lognormal", NewLogNormalMeanCV(20, 1), math.Inf(1)},
		{"weibull", Weibull{K: 1.2, Lambda: 15}, math.Inf(1)},
		{"pareto", Pareto{Xm: 3, Alpha: 2}, math.Inf(1)},
	}
	for _, f := range families {
		if q := f.d.Quantile(0); q != 0 && q != 3 { // pareto's lower bound is Xm
			t.Errorf("%s: Quantile(0) = %v", f.name, q)
		}
		if q := f.d.Quantile(-0.5); math.IsNaN(q) {
			t.Errorf("%s: Quantile(-0.5) NaN", f.name)
		}
		if q := f.d.Quantile(1); q != f.atHi {
			t.Errorf("%s: Quantile(1) = %v want %v", f.name, q, f.atHi)
		}
		if q := f.d.Quantile(1.5); q != f.atHi {
			t.Errorf("%s: Quantile(1.5) = %v want %v", f.name, q, f.atHi)
		}
	}
}

func TestWeibullPDFBoundary(t *testing.T) {
	// Shape-dependent behaviour at x = 0.
	if got := (Weibull{K: 1, Lambda: 4}).PDF(0); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("K=1 at 0: %v want 1/lambda", got)
	}
	if got := (Weibull{K: 0.7, Lambda: 4}).PDF(0); !math.IsInf(got, 1) {
		t.Errorf("K<1 at 0: %v want +Inf", got)
	}
	if got := (Weibull{K: 2, Lambda: 4}).PDF(0); got != 0 {
		t.Errorf("K>1 at 0: %v want 0", got)
	}
	if got := (Weibull{K: 2, Lambda: 4}).PDF(-1); got != 0 {
		t.Errorf("negative x: %v want 0", got)
	}
}

func TestExponentialPDFNegative(t *testing.T) {
	if got := NewExponentialMean(5).PDF(-1); got != 0 {
		t.Errorf("PDF(-1) = %v", got)
	}
	if got := NewExponentialMean(5).CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %v", got)
	}
}
