package dist

import (
	"math"
	"math/rand/v2"
	"sort"
)

// PointMass is the degenerate distribution concentrated at At. The
// adversarial stop-length distributions in the paper's proofs (Section 4,
// Appendix A) are finite combinations of point masses; together with
// Mixture this package can represent all of them.
type PointMass struct {
	At float64
}

// PDF implements Distribution. The density of an atom is reported as 0;
// the probability lives in the CDF jump.
func (p PointMass) PDF(x float64) float64 { return 0 }

// CDF implements Distribution.
func (p PointMass) CDF(x float64) float64 {
	if x >= p.At {
		return 1
	}
	return 0
}

// Quantile implements Distribution.
func (p PointMass) Quantile(q float64) float64 { return p.At }

// Mean implements Distribution.
func (p PointMass) Mean() float64 { return p.At }

// Sample implements Distribution.
func (p PointMass) Sample(rng *rand.Rand) float64 { return p.At }

// partialMean counts the atom when it lies in (0, b].
func (p PointMass) partialMean(b float64) float64 {
	if p.At > 0 && p.At <= b {
		return p.At
	}
	return 0
}

// Component pairs a distribution with a mixture weight.
type Component struct {
	W float64
	D Distribution
}

// Mixture is a finite mixture of component distributions. Weights are
// normalized at construction.
type Mixture struct {
	comps []Component
	cum   []float64
}

// NewMixture builds a mixture from components with positive weights.
// It panics when no component has positive weight — that is a programming
// error, not a data condition.
func NewMixture(comps ...Component) *Mixture {
	total := 0.0
	kept := make([]Component, 0, len(comps))
	for _, c := range comps {
		if c.W < 0 {
			panic("dist: negative mixture weight")
		}
		if c.W == 0 {
			continue
		}
		if c.D == nil {
			panic("dist: nil mixture component")
		}
		kept = append(kept, c)
		total += c.W
	}
	if total <= 0 {
		panic("dist: mixture needs at least one positive weight")
	}
	cum := make([]float64, len(kept))
	run := 0.0
	for i := range kept {
		kept[i].W /= total
		run += kept[i].W
		cum[i] = run
	}
	cum[len(cum)-1] = 1
	return &Mixture{comps: kept, cum: cum}
}

// Components returns a copy of the normalized components.
func (m *Mixture) Components() []Component {
	return append([]Component(nil), m.comps...)
}

// PDF implements Distribution.
func (m *Mixture) PDF(x float64) float64 {
	v := 0.0
	for _, c := range m.comps {
		v += c.W * c.D.PDF(x)
	}
	return v
}

// CDF implements Distribution.
func (m *Mixture) CDF(x float64) float64 {
	v := 0.0
	for _, c := range m.comps {
		v += c.W * c.D.CDF(x)
	}
	return v
}

// Quantile implements Distribution. Mixtures invert the CDF numerically.
func (m *Mixture) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		// The quantile of the heaviest tail; report the max of the
		// component suprema, which for our use is +inf or a finite atom.
		v := 0.0
		for _, c := range m.comps {
			v = math.Max(v, c.D.Quantile(1))
		}
		return v
	}
	// Atoms make the CDF discontinuous; bisection on CDF(x) - p still
	// converges to the correct generalized inverse.
	return quantileByBisection(m.CDF, p)
}

// Mean implements Distribution.
func (m *Mixture) Mean() float64 {
	v := 0.0
	for _, c := range m.comps {
		v += c.W * c.D.Mean()
	}
	return v
}

// Sample implements Distribution.
func (m *Mixture) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.comps) {
		i = len(m.comps) - 1
	}
	return m.comps[i].D.Sample(rng)
}

// partialMean sums the components' partial means, so mixtures of atoms and
// continuous parts — the paper's adversarial distributions — get exact
// mu_B- values.
func (m *Mixture) partialMean(b float64) float64 {
	v := 0.0
	for _, c := range m.comps {
		v += c.W * MuBMinus(c.D, b)
	}
	return v
}

// TwoPoint returns the adversarial two-point distribution used throughout
// Section 4: a stop of length short with probability 1-q and a stop of
// length long with probability q. It is the worst case for b-DET-style
// deterministic policies.
func TwoPoint(short, long, q float64) *Mixture {
	return NewMixture(
		Component{W: 1 - q, D: PointMass{At: short}},
		Component{W: q, D: PointMass{At: long}},
	)
}
