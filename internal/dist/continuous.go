package dist

import (
	"math"
	"math/rand/v2"
)

// Exponential is the exponential distribution with the given Rate
// (lambda); mean 1/lambda. It is the stop-length model assumed by the
// average-case analysis the paper argues against (Fujiwara & Iwama), kept
// here as a baseline and as the null hypothesis of the KS test in Fig. 3.
type Exponential struct {
	Rate float64
}

// NewExponentialMean returns an exponential distribution with the given
// mean.
func NewExponentialMean(mean float64) Exponential {
	if mean <= 0 {
		panic("dist: exponential mean must be positive")
	}
	return Exponential{Rate: 1 / mean}
}

// PDF implements Distribution.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

// CDF implements Distribution.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-e.Rate*x)
}

// Quantile implements Distribution.
func (e Exponential) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -math.Log(1-p) / e.Rate
}

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Sample implements Distribution.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return e.Quantile(rng.Float64())
}

// partialMean: ∫_0^b y·λe^{-λy} dy = 1/λ (1 - e^{-λb}(1+λb)).
func (e Exponential) partialMean(b float64) float64 {
	lb := e.Rate * b
	return (1 - math.Exp(-lb)*(1+lb)) / e.Rate
}

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// PDF implements Distribution.
func (u Uniform) PDF(x float64) float64 {
	if x < u.Lo || x > u.Hi {
		return 0
	}
	return 1 / (u.Hi - u.Lo)
}

// CDF implements Distribution.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Quantile implements Distribution.
func (u Uniform) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return u.Lo
	case p >= 1:
		return u.Hi
	default:
		return u.Lo + p*(u.Hi-u.Lo)
	}
}

// Mean implements Distribution.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Sample implements Distribution.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// LogNormal is the lognormal distribution: log Y ~ N(Mu, Sigma²). It forms
// the body of the synthetic NREL stop-length model — short urban stops
// cluster around 20-40 s with strong right skew.
type LogNormal struct {
	Mu, Sigma float64
}

// NewLogNormalMeanCV builds a lognormal with the given mean and
// coefficient of variation (std/mean).
func NewLogNormalMeanCV(mean, cv float64) LogNormal {
	if mean <= 0 || cv <= 0 {
		panic("dist: lognormal mean and cv must be positive")
	}
	s2 := math.Log(1 + cv*cv)
	return LogNormal{
		Mu:    math.Log(mean) - s2/2,
		Sigma: math.Sqrt(s2),
	}
}

// PDF implements Distribution.
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return math.Exp(-z*z/2) / (x * l.Sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Distribution.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return stdNormalCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// Quantile implements Distribution.
func (l LogNormal) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return math.Exp(l.Mu + l.Sigma*stdNormalQuantile(p))
}

// Mean implements Distribution.
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Sample implements Distribution.
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Weibull is the Weibull distribution with shape K and scale Lambda.
// Shape < 1 gives the heavy-ish tails seen in urban stop data.
type Weibull struct {
	K, Lambda float64
}

// PDF implements Distribution.
func (w Weibull) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if w.K == 1 {
			return 1 / w.Lambda
		}
		if w.K < 1 {
			return math.Inf(1)
		}
		return 0
	}
	z := x / w.Lambda
	return w.K / w.Lambda * math.Pow(z, w.K-1) * math.Exp(-math.Pow(z, w.K))
}

// CDF implements Distribution.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Lambda, w.K))
}

// Quantile implements Distribution.
func (w Weibull) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return w.Lambda * math.Pow(-math.Log(1-p), 1/w.K)
}

// Mean implements Distribution.
func (w Weibull) Mean() float64 {
	return w.Lambda * math.Gamma(1+1/w.K)
}

// Sample implements Distribution.
func (w Weibull) Sample(rng *rand.Rand) float64 {
	return w.Quantile(rng.Float64())
}

// Pareto is the Pareto (power-law) distribution with scale Xm and shape
// Alpha: P(Y > x) = (Xm/x)^Alpha for x >= Xm. It supplies the heavy tail
// that makes the observed stop distributions fail the exponential KS test
// in Section 5.
type Pareto struct {
	Xm, Alpha float64
}

// PDF implements Distribution.
func (p Pareto) PDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return p.Alpha * math.Pow(p.Xm, p.Alpha) / math.Pow(x, p.Alpha+1)
}

// CDF implements Distribution.
func (p Pareto) CDF(x float64) float64 {
	if x < p.Xm {
		return 0
	}
	return 1 - math.Pow(p.Xm/x, p.Alpha)
}

// Quantile implements Distribution.
func (p Pareto) Quantile(q float64) float64 {
	if q <= 0 {
		return p.Xm
	}
	if q >= 1 {
		return math.Inf(1)
	}
	return p.Xm / math.Pow(1-q, 1/p.Alpha)
}

// Mean implements Distribution. It is +inf for Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

// Sample implements Distribution.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	return p.Quantile(rng.Float64())
}

// stdNormalCDF is Phi(z) via the complementary error function.
func stdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// stdNormalQuantile is the Acklam/Wichura-style rational approximation of
// Phi^{-1}(p), refined with one Newton step; absolute error < 1e-12 on
// (1e-300, 1-1e-16).
func stdNormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Peter Acklam's coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Newton refinement: x -= (Phi(x)-p)/phi(x).
	e := stdNormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}
