package dist

import (
	"math"
	"testing"

	"idlereduce/internal/numeric"
)

func TestScaledToMean(t *testing.T) {
	base := NewLogNormalMeanCV(40, 1.1)
	for _, target := range []float64{5, 20, 40, 120} {
		s := NewScaledToMean(base, target)
		if math.Abs(s.Mean()-target) > 1e-9 {
			t.Errorf("target %v: mean %v", target, s.Mean())
		}
		checkDistributionBasics(t, "scaled", s, numeric.Linspace(0.01, target*10, 100))
	}
}

func TestScaledShapeInvariant(t *testing.T) {
	// Scaling preserves the normalized shape: CDF_s(k·m_s) == CDF_b(k·m_b).
	base := NewLogNormalMeanCV(30, 1.0)
	s := NewScaledToMean(base, 90)
	for _, k := range []float64{0.2, 0.5, 1, 2, 5} {
		cb := base.CDF(k * base.Mean())
		cs := s.CDF(k * s.Mean())
		if math.Abs(cb-cs) > 1e-9 {
			t.Errorf("k=%v: base %v scaled %v", k, cb, cs)
		}
	}
}

func TestScaledPartialMeanConsistent(t *testing.T) {
	base := NewExponentialMean(20)
	s := Scaled{Base: base, Factor: 3}
	const B = 28.0
	got := MuBMinus(s, B)
	want := numeric.Integrate(func(y float64) float64 { return y * s.PDF(y) }, 0, B)
	if math.Abs(got-want) > 1e-7 {
		t.Errorf("closed %v vs quadrature %v", got, want)
	}
}

func TestScaledToMeanPanicsOnPointMassAtZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for zero-mean base")
		}
	}()
	NewScaledToMean(PointMass{At: 0}, 10)
}

func TestTruncatedBasics(t *testing.T) {
	base := NewExponentialMean(30)
	tr := NewTruncated(base, 120)
	checkDistributionBasics(t, "truncated exp", tr, numeric.Linspace(0, 120, 100))
	if tr.CDF(120) != 1 {
		t.Error("CDF at bound must be 1")
	}
	if tr.CDF(121) != 1 {
		t.Error("CDF above bound must be 1")
	}
	if tr.Mean() >= base.Mean() {
		t.Errorf("truncation must lower the mean: %v vs %v", tr.Mean(), base.Mean())
	}
}

func TestTruncatedQuantileWithinBound(t *testing.T) {
	tr := NewTruncated(NewExponentialMean(50), 60)
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.999, 1} {
		q := tr.Quantile(p)
		if q < 0 || q > 60 {
			t.Errorf("Quantile(%v) = %v outside [0, 60]", p, q)
		}
	}
}

func TestTruncatedSampleRespectsBound(t *testing.T) {
	tr := NewTruncated(Pareto{Xm: 5, Alpha: 1.1}, 100)
	rng := newRNG(3)
	for i := 0; i < 10_000; i++ {
		if v := tr.Sample(rng); v > 100 || v < 0 {
			t.Fatalf("sample %v outside bound", v)
		}
	}
}

func TestTruncatedPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("want panic for non-positive bound")
			}
		}()
		NewTruncated(NewExponentialMean(1), 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("want panic when all mass removed")
			}
		}()
		NewTruncated(PointMass{At: 50}, 10)
	}()
}

func TestScaledPDFOutsideSupport(t *testing.T) {
	s := Scaled{Base: Uniform{Lo: 0, Hi: 10}, Factor: 2}
	if got := s.PDF(25); got != 0 {
		t.Errorf("PDF outside scaled support = %v", got)
	}
	if got := s.PDF(10); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("PDF(10) = %v want 0.05", got)
	}
}
