// Package multislope implements the multislope ski-rental generalization
// (Lotker, Patt-Shamir, Rawitz — SIAM J. Discrete Math 2012), cited by
// the paper as related work ("rent, lease, or buy").
//
// A vehicle stopped with a modern powertrain has more options than
// idle-or-off: deceleration fuel cut, accessory-only idle, full shutdown.
// Each state i has a one-time entry cost Buy_i (wear, re-engagement) and
// a running rate Rate_i (fuel per second), with Buy increasing and Rate
// decreasing. The online problem is when to move down the state ladder
// while the stop length is unknown.
//
// For additive instances whose lower envelope is concave (every state
// useful for some stop length), the problem decomposes exactly into one
// classic ski-rental per adjacent state pair: with segment break-even
// beta_i = (Buy_i - Buy_{i-1})/(Rate_{i-1} - Rate_i),
//
//	OPT(y) = Rate_k·y + Σ_i min((Rate_{i-1}-Rate_i)·y, Buy_i-Buy_{i-1})
//
// so any per-segment policy bundle inherits its per-segment guarantees:
// segment-wise DET is 2-competitive and segment-wise N-Rand is
// e/(e-1)-competitive in expectation (both pointwise in y, hence jointly).
// Segment-wise application of the paper's constrained selector gives each
// segment its optimal vertex for (mu_beta_i-, q_beta_i+); because one
// adversary distribution feeds every segment simultaneously, the bundle's
// expected worst case is at most the SUM of the segment bounds — an upper
// bound the adversary generally cannot attain on all segments at once.
// This package implements all three bundles.
package multislope

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"idlereduce/internal/numeric"
	"idlereduce/internal/skirental"
)

// Slope is one powertrain state.
type Slope struct {
	// Buy is the one-time cost of entering the state (in the same units
	// as Rate·seconds, e.g. seconds of full idling).
	Buy float64
	// Rate is the running cost per second while in the state.
	Rate float64
}

// Problem is a multislope instance. Construct with NewProblem.
type Problem struct {
	slopes []Slope
	betas  []float64 // segment break-evens, strictly increasing
}

// ErrBadProblem reports an invalid slope set.
var ErrBadProblem = errors.New("multislope: invalid problem")

// NewProblem validates and normalizes a slope set. Requirements:
// at least two slopes; the first has Buy = 0 (the initial state is free);
// Buys strictly increasing and Rates strictly decreasing after removing
// dominated slopes; the final envelope must be concave (segment
// break-evens strictly increasing) — slopes violating concavity are
// dominated and removed automatically.
func NewProblem(slopes []Slope) (*Problem, error) {
	if len(slopes) < 2 {
		return nil, fmt.Errorf("%w: need at least two slopes", ErrBadProblem)
	}
	ss := append([]Slope(nil), slopes...)
	for _, s := range ss {
		if s.Buy < 0 || s.Rate < 0 || math.IsNaN(s.Buy) || math.IsNaN(s.Rate) {
			return nil, fmt.Errorf("%w: negative or NaN slope %+v", ErrBadProblem, s)
		}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].Buy != ss[j].Buy {
			return ss[i].Buy < ss[j].Buy
		}
		return ss[i].Rate < ss[j].Rate
	})
	if ss[0].Buy != 0 {
		return nil, fmt.Errorf("%w: initial state must have Buy = 0, got %v", ErrBadProblem, ss[0].Buy)
	}
	// Remove dominated slopes: keep the lower concave envelope. A slope
	// is useful iff it is optimal for some stop length, which for lines
	// cost_i(y) = Buy_i + Rate_i·y is the standard upper-convex-hull
	// construction in (Rate, Buy) space.
	kept := []Slope{ss[0]}
	for _, s := range ss[1:] {
		last := kept[len(kept)-1]
		if s.Rate >= last.Rate {
			continue // more buy for no rate improvement: dominated
		}
		kept = append(kept, s)
		// Enforce increasing break-evens by popping middle slopes that
		// fall above the chord of their neighbours.
		for len(kept) >= 3 {
			a, b, c := kept[len(kept)-3], kept[len(kept)-2], kept[len(kept)-1]
			bAB := (b.Buy - a.Buy) / (a.Rate - b.Rate)
			bBC := (c.Buy - b.Buy) / (b.Rate - c.Rate)
			if bAB < bBC {
				break
			}
			kept = append(kept[:len(kept)-2], c)
		}
	}
	if len(kept) < 2 {
		return nil, fmt.Errorf("%w: all non-initial slopes dominated", ErrBadProblem)
	}
	p := &Problem{slopes: kept}
	p.betas = make([]float64, len(kept)-1)
	for i := 1; i < len(kept); i++ {
		p.betas[i-1] = (kept[i].Buy - kept[i-1].Buy) / (kept[i-1].Rate - kept[i].Rate)
	}
	return p, nil
}

// Slopes returns the normalized (envelope) slopes.
func (p *Problem) Slopes() []Slope { return append([]Slope(nil), p.slopes...) }

// Breakpoints returns the segment break-evens beta_i, strictly
// increasing; beta_i is the stop length at which state i overtakes state
// i-1 offline.
func (p *Problem) Breakpoints() []float64 { return append([]float64(nil), p.betas...) }

// Segments returns the per-segment classic ski-rental parameters:
// rate deltas and buy deltas.
func (p *Problem) Segments() (deltaRate, deltaBuy []float64) {
	k := len(p.slopes) - 1
	deltaRate = make([]float64, k)
	deltaBuy = make([]float64, k)
	for i := 1; i <= k; i++ {
		deltaRate[i-1] = p.slopes[i-1].Rate - p.slopes[i].Rate
		deltaBuy[i-1] = p.slopes[i].Buy - p.slopes[i-1].Buy
	}
	return deltaRate, deltaBuy
}

// OfflineCost is the clairvoyant cost min_i (Buy_i + Rate_i·y).
func (p *Problem) OfflineCost(y float64) float64 {
	best := math.Inf(1)
	for _, s := range p.slopes {
		if c := s.Buy + s.Rate*y; c < best {
			best = c
		}
	}
	return best
}

// offlineBySegments evaluates the decomposition identity; exported to
// tests via the package test file.
func (p *Problem) offlineBySegments(y float64) float64 {
	dr, db := p.Segments()
	cost := p.slopes[len(p.slopes)-1].Rate * y
	for i := range dr {
		cost += math.Min(dr[i]*y, db[i])
	}
	return cost
}

// Policy is a multislope online strategy: a bundle of per-segment
// classic ski-rental policies.
type Policy struct {
	name     string
	prob     *Problem
	segments []skirental.Policy // policy i decides segment i (break-even beta-normalized seconds)
}

// NewDeterministic bundles segment-wise DET: move to state i when the
// stop reaches beta_i. Exactly 2-competitive on concave additive
// instances.
func NewDeterministic(p *Problem) *Policy {
	segs := make([]skirental.Policy, len(p.betas))
	dr, db := p.Segments()
	for i := range segs {
		segs[i] = skirental.NewDET(db[i] / dr[i])
	}
	return &Policy{name: "MS-DET", prob: p, segments: segs}
}

// NewRandomized bundles segment-wise N-Rand: each segment draws its
// switch time from the e/(e-1)-competitive density. Expected cost is at
// most e/(e-1)·OPT(y) for every stop length.
func NewRandomized(p *Problem) *Policy {
	segs := make([]skirental.Policy, len(p.betas))
	dr, db := p.Segments()
	for i := range segs {
		segs[i] = skirental.NewNRand(db[i] / dr[i])
	}
	return &Policy{name: "MS-Rand", prob: p, segments: segs}
}

// NewConstrained bundles the paper's constrained selector per segment,
// estimating (mu_beta-, q_beta+) at each segment's break-even from the
// observed stop sample. This extends the paper's algorithm to the
// multislope setting: each segment independently plays its optimal
// vertex.
func NewConstrained(p *Problem, stops []float64) (*Policy, error) {
	segs := make([]skirental.Policy, len(p.betas))
	dr, db := p.Segments()
	for i := range segs {
		b := db[i] / dr[i]
		pol, err := skirental.NewConstrainedFromStops(b, stops)
		if err != nil {
			return nil, fmt.Errorf("multislope: segment %d: %w", i, err)
		}
		segs[i] = pol
	}
	return &Policy{name: "MS-Proposed", prob: p, segments: segs}, nil
}

// NewConstrainedFromStats bundles the paper's constrained selector per
// segment from explicitly provided per-segment statistics: segStats[i]
// is the pair (mu_beta_i-, q_beta_i+) measured at segment i's
// break-even beta_i. This is the serving-side constructor: a daemon
// that only carries constrained pairs (never raw stop samples) can
// still build the bundle, with each segment independently playing its
// optimal vertex.
func NewConstrainedFromStats(p *Problem, segStats []skirental.Stats) (*Policy, error) {
	if len(segStats) != len(p.betas) {
		return nil, fmt.Errorf("multislope: %d segment stats for %d segments", len(segStats), len(p.betas))
	}
	segs := make([]skirental.Policy, len(p.betas))
	for i, s := range segStats {
		pol, err := skirental.NewConstrained(p.betas[i], s)
		if err != nil {
			return nil, fmt.Errorf("multislope: segment %d: %w", i, err)
		}
		segs[i] = pol
	}
	return &Policy{name: "MS-Proposed", prob: p, segments: segs}, nil
}

// Name returns the policy label.
func (pl *Policy) Name() string { return pl.name }

// Problem returns the instance the policy was built for.
func (pl *Policy) Problem() *Problem { return pl.prob }

// SegmentPolicies exposes the per-segment bundle (for inspection).
func (pl *Policy) SegmentPolicies() []skirental.Policy {
	return append([]skirental.Policy(nil), pl.segments...)
}

// Thresholds draws the switch times for one stop: Thresholds()[i] is the
// time at which the policy moves from state i to state i+1 (may be
// unordered for randomized bundles; an out-of-order draw simply means a
// multi-level downshift when the later time passes).
func (pl *Policy) Thresholds(rng *rand.Rand) []float64 {
	xs := make([]float64, len(pl.segments))
	for i, s := range pl.segments {
		xs[i] = s.Threshold(rng)
	}
	return xs
}

// CostForStop evaluates the realized cost of threshold vector xs on a
// stop of length y via the segment decomposition.
func (pl *Policy) CostForStop(xs []float64, y float64) float64 {
	dr, db := pl.prob.Segments()
	var cost numeric.KahanSum
	cost.Add(pl.prob.slopes[len(pl.prob.slopes)-1].Rate * y)
	for i := range dr {
		cost.Add(dr[i] * skirental.OnlineCost(xs[i], y, db[i]/dr[i]))
	}
	return cost.Sum()
}

// MeanCostForStop returns the expected cost over the bundle's randomness
// for a stop of length y.
func (pl *Policy) MeanCostForStop(y float64) float64 {
	dr, _ := pl.prob.Segments()
	var cost numeric.KahanSum
	cost.Add(pl.prob.slopes[len(pl.prob.slopes)-1].Rate * y)
	for i := range dr {
		cost.Add(dr[i] * pl.segments[i].MeanCostForStop(y))
	}
	return cost.Sum()
}

// CR returns the expected competitive ratio on one stop.
func (pl *Policy) CR(y float64) float64 {
	off := pl.prob.OfflineCost(y)
	if off == 0 {
		return 1
	}
	return pl.MeanCostForStop(y) / off
}

// WorstCaseCR scans stop lengths for the largest expected CR (grid over
// the envelope's interesting range plus the far tail).
//
// This is a POINTWISE supremum over y: finite for MS-DET (2) and MS-Rand
// (e/(e-1)), but unbounded for bundles whose segments play TOI — TOI's
// guarantee is over the expected cost of a stop-length distribution
// (use TraceCR), not per stop. Very large values signal such a segment.
func (pl *Policy) WorstCaseCR() float64 {
	hi := pl.prob.betas[len(pl.prob.betas)-1] * 4
	_, worst := numeric.GridMax(pl.CR, 1e-9, hi, 4000)
	// The tail is flat or monotone beyond the last breakpoint; probe it.
	if far := pl.CR(hi * 100); far > worst {
		worst = far
	}
	return worst
}

// TraceCR evaluates the bundle on a concrete stop sequence using
// analytic per-stop expectations.
func (pl *Policy) TraceCR(stops []float64) float64 {
	var on, off numeric.KahanSum
	for _, y := range stops {
		on.Add(pl.MeanCostForStop(y))
		off.Add(pl.prob.OfflineCost(y))
	}
	if off.Sum() == 0 {
		return 1
	}
	return on.Sum() / off.Sum()
}

// AutomotiveThreeState returns the motivating instance: full idle
// (rate 1, free), fuel-cut/accessory idle (reduced rate, small
// re-engagement cost), engine off (rate 0, restart cost B). Units are
// seconds of full idling.
func AutomotiveThreeState(b float64) (*Problem, error) {
	if b <= 10 {
		return nil, fmt.Errorf("%w: break-even %v too small for the three-state model", ErrBadProblem, b)
	}
	return NewProblem([]Slope{
		{Buy: 0, Rate: 1},    // engine idling
		{Buy: 4, Rate: 0.45}, // fuel cut / accessory idle
		{Buy: b, Rate: 0},    // engine off, restart costs B
	})
}
