package multislope

import (
	"math"
	"testing"
)

// FuzzNewProblem: arbitrary slope triples must never panic; accepted
// problems must have strictly increasing breakpoints and an offline cost
// that satisfies the segment decomposition.
func FuzzNewProblem(f *testing.F) {
	f.Add(0.0, 1.0, 4.0, 0.45, 28.0, 0.0)
	f.Add(0.0, 1.0, 28.0, 0.0, 28.0, 0.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, b1, r1, b2, r2, b3, r3 float64) {
		p, err := NewProblem([]Slope{{b1, r1}, {b2, r2}, {b3, r3}})
		if err != nil {
			return
		}
		bps := p.Breakpoints()
		for i := 1; i < len(bps); i++ {
			if !(bps[i] > bps[i-1]) {
				t.Fatalf("breakpoints not increasing: %v", bps)
			}
		}
		for _, y := range []float64{0, 1, 10, 100, 1e6} {
			direct := p.OfflineCost(y)
			seg := p.offlineBySegments(y)
			if math.Abs(direct-seg) > 1e-6*(1+math.Abs(direct)) {
				t.Fatalf("decomposition broken at y=%v: %v vs %v (slopes %v)", y, direct, seg, p.Slopes())
			}
		}
	})
}
