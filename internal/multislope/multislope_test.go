package multislope

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"idlereduce/internal/numeric"
	"idlereduce/internal/skirental"
)

func threeState(t *testing.T) *Problem {
	t.Helper()
	p, err := AutomotiveThreeState(28)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProblemValidation(t *testing.T) {
	cases := map[string][]Slope{
		"too few":       {{0, 1}},
		"nonzero start": {{1, 1}, {5, 0}},
		"negative buy":  {{0, 1}, {-2, 0}},
		"negative rate": {{0, 1}, {3, -1}},
		"nan":           {{0, 1}, {math.NaN(), 0}},
		"all dominated": {{0, 1}, {5, 1}, {9, 1.5}},
	}
	for name, ss := range cases {
		if _, err := NewProblem(ss); !errors.Is(err, ErrBadProblem) {
			t.Errorf("%s: want ErrBadProblem, got %v", name, err)
		}
	}
}

func TestNewProblemRemovesDominated(t *testing.T) {
	// The middle slope {10, 0.9} saves almost no rate for a big buy; it
	// lies above the chord between its neighbours and must be dropped.
	p, err := NewProblem([]Slope{{0, 1}, {10, 0.9}, {28, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Slopes()) != 2 {
		t.Errorf("kept %d slopes, want 2: %+v", len(p.Slopes()), p.Slopes())
	}
	// And the surviving instance is the classic ski rental with B = 28.
	bps := p.Breakpoints()
	if len(bps) != 1 || math.Abs(bps[0]-28) > 1e-12 {
		t.Errorf("breakpoints %v", bps)
	}
}

func TestNewProblemSortsInput(t *testing.T) {
	p, err := NewProblem([]Slope{{28, 0}, {0, 1}, {4, 0.45}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Slopes()) != 3 {
		t.Fatalf("slopes %v", p.Slopes())
	}
	bps := p.Breakpoints()
	if !(bps[0] < bps[1]) {
		t.Errorf("breakpoints not increasing: %v", bps)
	}
}

func TestOfflineDecompositionIdentity(t *testing.T) {
	// OPT(y) = Rate_k·y + Σ min(Δr·y, Δb) must hold exactly on concave
	// instances — the foundation of the whole package.
	p := threeState(t)
	prop := func(u uint16) bool {
		y := float64(u) / 100
		return math.Abs(p.OfflineCost(y)-p.offlineBySegments(y)) < 1e-9*(1+y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestOfflineCostEnvelope(t *testing.T) {
	p := threeState(t)
	// Short stop: idling is optimal (cost = y).
	if got := p.OfflineCost(3); got != 3 {
		t.Errorf("OfflineCost(3) = %v", got)
	}
	// Mid stop: fuel-cut state wins (4 + 0.45y).
	if got := p.OfflineCost(20); math.Abs(got-(4+0.45*20)) > 1e-12 {
		t.Errorf("OfflineCost(20) = %v", got)
	}
	// Long stop: shutdown (flat 28).
	if got := p.OfflineCost(1000); got != 28 {
		t.Errorf("OfflineCost(1000) = %v", got)
	}
}

func TestDeterministicTwoCompetitive(t *testing.T) {
	p := threeState(t)
	det := NewDeterministic(p)
	worst := det.WorstCaseCR()
	if worst > 2+1e-9 {
		t.Errorf("MS-DET worst CR %v > 2", worst)
	}
	// And the bound is tight: at a breakpoint the ratio hits 2 exactly
	// in the single-segment reduction; for multi-segment it approaches 2
	// at the first breakpoint.
	if worst < 1.8 {
		t.Errorf("MS-DET worst CR %v suspiciously small", worst)
	}
}

func TestRandomizedPointwiseRatio(t *testing.T) {
	// Segment-wise N-Rand: expected cost <= e/(e-1)·OPT for every y,
	// with equality wherever all active segments are strictly inside
	// their windows.
	p := threeState(t)
	r := NewRandomized(p)
	bound := math.E / (math.E - 1)
	for _, y := range []float64{0.5, 3, 7.3, 15, 40, 53, 100, 5000} {
		cr := r.CR(y)
		if cr > bound+1e-9 {
			t.Errorf("y=%v: CR %v exceeds e/(e-1)", y, cr)
		}
		if cr < 1-1e-9 {
			t.Errorf("y=%v: CR %v below 1", y, cr)
		}
	}
	if w := r.WorstCaseCR(); math.Abs(w-bound) > 1e-6 {
		t.Errorf("worst CR %v, want e/(e-1)", w)
	}
}

func TestRandomizedMonteCarloMatchesMean(t *testing.T) {
	p := threeState(t)
	r := NewRandomized(p)
	rng := rand.New(rand.NewPCG(5, 6))
	for _, y := range []float64{6.0, 30.0, 80.0} {
		var sum numeric.KahanSum
		const N = 200_000
		for i := 0; i < N; i++ {
			sum.Add(r.CostForStop(r.Thresholds(rng), y))
		}
		mc := sum.Sum() / N
		an := r.MeanCostForStop(y)
		if math.Abs(mc-an) > 0.01*an {
			t.Errorf("y=%v: MC %v analytic %v", y, mc, an)
		}
	}
}

func TestDeterministicCostForStopTrajectory(t *testing.T) {
	// Hand-check MS-DET on the three-state instance (beta1 = 4/0.55 ≈
	// 7.27, beta2 = 24/0.45 ≈ 53.3).
	p := threeState(t)
	det := NewDeterministic(p)
	rng := rand.New(rand.NewPCG(1, 1))
	xs := det.Thresholds(rng)
	// Stop shorter than beta1: pure idling.
	if got := det.CostForStop(xs, 5); math.Abs(got-5) > 1e-9 {
		t.Errorf("y=5: %v want 5", got)
	}
	// Stop between breakpoints: idled to beta1, paid buy 4, then reduced
	// rate. Segment view: seg1 pays db1 + ... total = 0.45y + min-part.
	y := 20.0
	want := 0.45*y + (0.55*xs[0] + 4) // seg1 bought, seg2 still renting at 0.45 share? seg2: dr2*y = 0.45*20 = 9 < db2=24
	if got := det.CostForStop(xs, y); math.Abs(got-want) > 1e-9 {
		t.Errorf("y=20: %v want %v", got, want)
	}
	// Very long stop: both segments bought; total = 0.55*x1+4 + 0.45*x2+24.
	wantLong := (0.55*xs[0] + 4) + (0.45*xs[1] + 24)
	if got := det.CostForStop(xs, 1e6); math.Abs(got-wantLong) > 1e-9 {
		t.Errorf("long: %v want %v", got, wantLong)
	}
}

func TestConstrainedBeatsDetAndRandOnTraces(t *testing.T) {
	// On a trace whose stops are mostly short, the constrained bundle
	// should never lose to MS-DET or MS-Rand.
	p := threeState(t)
	rng := rand.New(rand.NewPCG(9, 9))
	stops := make([]float64, 5000)
	for i := range stops {
		// 85% short (2-10 s), 15% long (80-400 s).
		if rng.Float64() < 0.85 {
			stops[i] = 2 + rng.Float64()*8
		} else {
			stops[i] = 80 + rng.Float64()*320
		}
	}
	cons, err := NewConstrained(p, stops)
	if err != nil {
		t.Fatal(err)
	}
	crC := cons.TraceCR(stops)
	crD := NewDeterministic(p).TraceCR(stops)
	crR := NewRandomized(p).TraceCR(stops)
	if crC > crD+1e-9 || crC > crR+1e-9 {
		t.Errorf("MS-Proposed %v vs MS-DET %v, MS-Rand %v", crC, crD, crR)
	}
	if cons.Name() != "MS-Proposed" || len(cons.SegmentPolicies()) != 2 {
		t.Error("bundle malformed")
	}
}

func TestConstrainedEmptyStops(t *testing.T) {
	p := threeState(t)
	if _, err := NewConstrained(p, nil); err == nil {
		t.Error("want error for empty stops")
	}
}

func TestTraceCRZeroTrace(t *testing.T) {
	p := threeState(t)
	if got := NewDeterministic(p).TraceCR(nil); got != 1 {
		t.Errorf("empty trace CR %v", got)
	}
}

func TestAutomotiveThreeStateValidation(t *testing.T) {
	if _, err := AutomotiveThreeState(5); !errors.Is(err, ErrBadProblem) {
		t.Errorf("want ErrBadProblem for tiny B, got %v", err)
	}
	p, err := AutomotiveThreeState(47)
	if err != nil {
		t.Fatal(err)
	}
	bps := p.Breakpoints()
	if len(bps) != 2 || !(bps[0] < bps[1]) {
		t.Errorf("breakpoints %v", bps)
	}
}

func TestMultislopeReducesToClassic(t *testing.T) {
	// A two-slope instance IS the classic problem; MS-DET must behave
	// exactly like DET and the randomized bundle like N-Rand.
	p, err := NewProblem([]Slope{{0, 1}, {28, 0}})
	if err != nil {
		t.Fatal(err)
	}
	det := NewDeterministic(p)
	cd := skirental.NewDET(28)
	for _, y := range []float64{5, 28, 29, 300} {
		if math.Abs(det.MeanCostForStop(y)-cd.MeanCostForStop(y)) > 1e-12 {
			t.Errorf("y=%v: MS %v classic %v", y, det.MeanCostForStop(y), cd.MeanCostForStop(y))
		}
	}
	r := NewRandomized(p)
	nr := skirental.NewNRand(28)
	for _, y := range []float64{5, 28, 300} {
		if math.Abs(r.MeanCostForStop(y)-nr.MeanCostForStop(y)) > 1e-12 {
			t.Errorf("rand y=%v: MS %v classic %v", y, r.MeanCostForStop(y), nr.MeanCostForStop(y))
		}
	}
}

func TestWorstCaseCRMultislopeBelowClassicDET(t *testing.T) {
	// Adding a useful middle state strictly helps the deterministic
	// strategy relative to classic 2-competitive DET? It stays 2 in the
	// worst case (each segment can be caught), but realized CR on
	// intermediate stops improves. Check a mid-length stop.
	p := threeState(t)
	msDet := NewDeterministic(p)
	classic, err := NewProblem([]Slope{{0, 1}, {28, 0}})
	if err != nil {
		t.Fatal(err)
	}
	cDet := NewDeterministic(classic)
	y := 40.0 // middle state shines here
	msCost := msDet.MeanCostForStop(y)
	cCost := cDet.MeanCostForStop(y)
	if msCost >= cCost {
		t.Errorf("three-state DET cost %v should beat two-state %v at y=%v", msCost, cCost, y)
	}
}
