// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver returns both the structured results
// (for tests and benchmarks) and a rendered text report (for the CLI),
// so `idlereduce <experiment>` regenerates the corresponding artifact.
//
// Experiment index:
//
//	Fig1      — strategy regions and worst-case CR surface over (mu/B, q)
//	Fig2      — projected views: worst-case CR vs q at fixed mu
//	Fig3      — stop-length distributions of the three areas + KS test
//	Fig4      — per-vehicle CR comparison across six strategies, B=28/47
//	Fig5/Fig6 — worst-case CR vs mean stop length (B=28 / B=47)
//	Table1    — stops per day statistics per area
//	AppendixC — break-even interval derivation
package experiments

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"time"

	"idlereduce/internal/costmodel"
	"idlereduce/internal/fleet"
	"idlereduce/internal/obs"
)

// Options tunes experiment sizes. The zero value is replaced by Defaults.
type Options struct {
	// Seed drives all synthetic data generation.
	Seed uint64
	// FleetVehicles overrides the per-area vehicle counts when > 0
	// (useful to shrink runs); 0 keeps the paper's 217/312/653.
	FleetVehicles int
	// GridN is the resolution of Figure 1's statistics grid.
	GridN int
	// SweepPoints is the number of traffic conditions in Figures 5-6.
	SweepPoints int
	// Workers bounds the parallel engine's worker pool for every driver
	// (fleet generation, grid fills, sweeps, per-vehicle evaluation).
	// 0 means the engine default (GOMAXPROCS). Results are identical for
	// every value — see docs/PARALLELISM.md.
	Workers int
}

// Defaults returns the publication-scale options.
func Defaults() Options {
	return Options{Seed: 20140601, GridN: 60, SweepPoints: 30}
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	d := Defaults()
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.GridN == 0 {
		o.GridN = d.GridN
	}
	if o.SweepPoints == 0 {
		o.SweepPoints = d.SweepPoints
	}
	return o
}

// BuildFleet generates the synthetic NREL-substitute fleet for the
// options.
func (o Options) BuildFleet() (*fleet.Fleet, error) {
	return o.BuildFleetContext(context.Background())
}

// BuildFleetContext is BuildFleet with an observability sink: when ctx
// carries an obs.Recorder the generation publishes throughput metrics
// (see fleet.GenerateFleetContext).
func (o Options) BuildFleetContext(ctx context.Context) (*fleet.Fleet, error) {
	o = o.withDefaults()
	areas := fleet.DefaultAreas()
	if o.FleetVehicles > 0 {
		for i := range areas {
			areas[i].Vehicles = o.FleetVehicles
		}
	}
	return fleet.GenerateFleetWorkers(ctx, o.Seed, o.Workers, areas...)
}

// Timed runs one experiment driver under the context's observability
// sink, publishing its wall clock and allocation footprint
// (runtime.MemStats deltas) as per-experiment gauges plus a span.
// Without a recorder in ctx it just calls fn. The MemStats deltas are
// meaningful for the single-threaded CLI usage they serve; concurrent
// Timed calls would attribute each other's allocations.
func Timed(ctx context.Context, name string, fn func() error) error {
	rec := obs.FromContext(ctx)
	if !rec.On() {
		return fn()
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	err := fn()
	wall := time.Since(t0)
	runtime.ReadMemStats(&m1)
	rec.Set(obs.L("experiment_wall_ms", "name", name), float64(wall)/float64(time.Millisecond))
	rec.Set(obs.L("experiment_alloc_bytes", "name", name), float64(m1.TotalAlloc-m0.TotalAlloc))
	rec.Set(obs.L("experiment_mallocs", "name", name), float64(m1.Mallocs-m0.Mallocs))
	rec.Set(obs.L("experiment_gc_cycles", "name", name), float64(m1.NumGC-m0.NumGC))
	rec.Add("experiment_runs_total", 1)
	rec.Event("experiment.done",
		slog.String("name", name),
		slog.Duration("wall", wall),
		slog.Uint64("alloc_bytes", m1.TotalAlloc-m0.TotalAlloc),
		slog.Bool("ok", err == nil))
	return err
}

// BreakEvens returns the two break-even intervals of the evaluation:
// the paper's published minimum estimates for SSV and conventional
// vehicles.
func BreakEvens() (ssv, conventional float64) {
	return costmodel.PaperBreakEvenSSV, costmodel.PaperBreakEvenConventional
}

// header renders a section banner.
func header(title string) string {
	return fmt.Sprintf("== %s ==\n\n", title)
}

// ResolvedSeed returns the seed after defaulting (exported for tools that
// generate fleets from custom area configs).
func (o Options) ResolvedSeed() uint64 {
	return o.withDefaults().Seed
}
