// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver returns both the structured results
// (for tests and benchmarks) and a rendered text report (for the CLI),
// so `idlereduce <experiment>` regenerates the corresponding artifact.
//
// Experiment index:
//
//	Fig1      — strategy regions and worst-case CR surface over (mu/B, q)
//	Fig2      — projected views: worst-case CR vs q at fixed mu
//	Fig3      — stop-length distributions of the three areas + KS test
//	Fig4      — per-vehicle CR comparison across six strategies, B=28/47
//	Fig5/Fig6 — worst-case CR vs mean stop length (B=28 / B=47)
//	Table1    — stops per day statistics per area
//	AppendixC — break-even interval derivation
package experiments

import (
	"fmt"

	"idlereduce/internal/costmodel"
	"idlereduce/internal/fleet"
)

// Options tunes experiment sizes. The zero value is replaced by Defaults.
type Options struct {
	// Seed drives all synthetic data generation.
	Seed uint64
	// FleetVehicles overrides the per-area vehicle counts when > 0
	// (useful to shrink runs); 0 keeps the paper's 217/312/653.
	FleetVehicles int
	// GridN is the resolution of Figure 1's statistics grid.
	GridN int
	// SweepPoints is the number of traffic conditions in Figures 5-6.
	SweepPoints int
}

// Defaults returns the publication-scale options.
func Defaults() Options {
	return Options{Seed: 20140601, GridN: 60, SweepPoints: 30}
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	d := Defaults()
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.GridN == 0 {
		o.GridN = d.GridN
	}
	if o.SweepPoints == 0 {
		o.SweepPoints = d.SweepPoints
	}
	return o
}

// BuildFleet generates the synthetic NREL-substitute fleet for the
// options.
func (o Options) BuildFleet() (*fleet.Fleet, error) {
	o = o.withDefaults()
	areas := fleet.DefaultAreas()
	if o.FleetVehicles > 0 {
		for i := range areas {
			areas[i].Vehicles = o.FleetVehicles
		}
	}
	return fleet.GenerateFleet(o.Seed, areas...)
}

// BreakEvens returns the two break-even intervals of the evaluation:
// the paper's published minimum estimates for SSV and conventional
// vehicles.
func BreakEvens() (ssv, conventional float64) {
	return costmodel.PaperBreakEvenSSV, costmodel.PaperBreakEvenConventional
}

// header renders a section banner.
func header(title string) string {
	return fmt.Sprintf("== %s ==\n\n", title)
}

// ResolvedSeed returns the seed after defaulting (exported for tools that
// generate fleets from custom area configs).
func (o Options) ResolvedSeed() uint64 {
	return o.withDefaults().Seed
}
