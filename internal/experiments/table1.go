package experiments

import (
	"fmt"
	"strings"

	"idlereduce/internal/fleet"
	"idlereduce/internal/stats"
	"idlereduce/internal/textplot"
)

// Table1Row is one area of the Table 1 reproduction: stops per day
// statistics and the mu+2sigma coverage probability.
type Table1Row struct {
	Area     string
	Vehicles int
	Mean     float64
	Std      float64
	// PWithin is P{X <= mu + 2 sigma} over daily stop counts.
	PWithin float64
}

// Table1 reproduces Table 1: per-area stops-per-day mean, standard
// deviation and the fraction of vehicles within mu + 2 sigma.
func Table1(o Options, f *fleet.Fleet) ([]Table1Row, string, error) {
	var rows []Table1Row
	for _, area := range f.Areas() {
		daily := f.DailyStopCounts(area)
		sum, err := stats.Describe(daily)
		if err != nil {
			return nil, "", fmt.Errorf("experiments: table1 %s: %w", area, err)
		}
		rows = append(rows, Table1Row{
			Area:     area,
			Vehicles: len(f.ByArea(area)),
			Mean:     sum.Mean,
			Std:      sum.Std,
			PWithin:  stats.FracAtMost(daily, sum.Mean+2*sum.Std),
		})
	}

	var sb strings.Builder
	sb.WriteString(header("Table 1: stops per day in 3 locations"))
	tbl := [][]string{{"location", "vehicles", "mean", "std", "P{X<=mu+2sigma}"}}
	for _, r := range rows {
		tbl = append(tbl, []string{
			r.Area,
			fmt.Sprintf("%d", r.Vehicles),
			fmt.Sprintf("%.2f", r.Mean),
			fmt.Sprintf("%.2f", r.Std),
			fmt.Sprintf("%.4f", r.PWithin),
		})
	}
	sb.WriteString(textplot.Table(tbl))
	sb.WriteString("\nPaper reference (different dataset slice): Atlanta 10.37/8.42/0.9091,\nChicago 12.49/9.97/0.9534, California 9.37/7.68/0.9553.\n")
	return rows, sb.String(), nil
}
