package experiments

import (
	"context"
	"fmt"
	"strings"

	"idlereduce/internal/analysis"
	"idlereduce/internal/fleet"
	"idlereduce/internal/stats"
	"idlereduce/internal/textplot"
)

// Fig4Result holds the individual-vehicle comparison for one break-even
// interval (one row of panels in Figure 4).
type Fig4Result struct {
	B    float64
	Eval *analysis.FleetEvaluation
}

// Fig4 reproduces Figure 4: per-vehicle CRs of the six strategies on
// every vehicle, summarized as worst-case and average CR per area, for
// both vehicle classes (B = 28 s SSV on the top row, B = 47 s conventional
// on the bottom row).
func Fig4(o Options, f *fleet.Fleet) ([]Fig4Result, string, error) {
	return Fig4Context(context.Background(), o, f)
}

// Fig4Context is Fig4 under a context: cancellable, and when ctx carries
// an obs.Recorder the per-vehicle evaluation publishes its pool metrics.
func Fig4Context(ctx context.Context, o Options, f *fleet.Fleet) ([]Fig4Result, string, error) {
	o = o.withDefaults()
	var results []Fig4Result
	var sb strings.Builder
	sb.WriteString(header("Figure 4: individual vehicle test"))

	ssv, conv := BreakEvens()
	for _, b := range []float64{ssv, conv} {
		ev, err := analysis.EvaluateFleetContext(ctx, b, f, o.Workers)
		if err != nil {
			return nil, "", fmt.Errorf("experiments: fig4 B=%v: %w", b, err)
		}
		results = append(results, Fig4Result{B: b, Eval: ev})

		kind := "SSV"
		if b == conv {
			kind = "no-SSS"
		}
		sb.WriteString(fmt.Sprintf("--- B = %.0f s (%s) ---\n\n", b, kind))
		for _, metric := range []string{"worst", "mean"} {
			rows := [][]string{append([]string{metric + " CR"}, analysis.PolicyNames...)}
			for _, a := range ev.Areas {
				row := []string{a.Area}
				for _, p := range analysis.PolicyNames {
					v := a.WorstCR[p]
					if metric == "mean" {
						v = a.MeanCR[p]
					}
					row = append(row, fmt.Sprintf("%.3f", v))
				}
				rows = append(rows, row)
			}
			sb.WriteString(textplot.Table(rows))
			sb.WriteString("\n")
		}
		// Per-vehicle CR histogram for the proposed policy — the shape
		// Figure 4's per-vehicle curves convey.
		var crs []float64
		for _, v := range ev.Vehicles {
			crs = append(crs, v.CR["Proposed"])
		}
		hist, err := stats.NewHistogram(crs, 1.0, 1.6, 12)
		if err != nil {
			return nil, "", err
		}
		bars := &textplot.BarChart{
			Title: fmt.Sprintf("Proposed per-vehicle CR distribution (B = %.0f s)", b),
			Width: 46,
		}
		for i := range hist.Counts {
			bars.Add(fmt.Sprintf("%.2f-%.2f", 1.0+float64(i)*0.05, 1.0+float64(i+1)*0.05), float64(hist.Counts[i]))
		}
		sb.WriteString(bars.Render())
		sb.WriteString("\n")
		sb.WriteString(fmt.Sprintf("Proposed policy attains the best CR in %d of %d vehicles (%.1f%%).\n",
			ev.ProposedBestTotal, len(ev.Vehicles),
			100*float64(ev.ProposedBestTotal)/float64(len(ev.Vehicles))))
		counts := map[string]int{}
		for _, v := range ev.Vehicles {
			counts[v.Choice.String()]++
		}
		sb.WriteString(fmt.Sprintf("Vertex selection: %v\n\n", formatCounts(counts)))
	}
	sb.WriteString("Paper reference: best in 1169/1182 vehicles at B=28 and 977/1182 at B=47;\n")
	sb.WriteString("mean CR 1.11/1.32/1.10 (B=28) and 1.35/1.42/1.35 (B=47) for CA/Chicago/Atlanta.\n")
	return results, sb.String(), nil
}

// formatCounts renders a deterministic "name:count" list.
func formatCounts(m map[string]int) string {
	order := []string{"DET", "TOI", "b-DET", "N-Rand"}
	parts := make([]string, 0, len(order))
	for _, k := range order {
		if m[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
		}
	}
	return strings.Join(parts, " ")
}
