package experiments

import (
	"fmt"
	"strings"

	"idlereduce/internal/dist"
	"idlereduce/internal/fleet"
	"idlereduce/internal/stats"
	"idlereduce/internal/textplot"
)

// Fig3Area holds one area's stop-length distribution summary.
type Fig3Area struct {
	Area     string
	Vehicles int
	Stops    int
	Summary  stats.Summary
	// KS is the one-sample Kolmogorov–Smirnov test of the stop lengths
	// against a fitted exponential (the paper's null hypothesis).
	KS stats.KSResult
	// ChiSq is a chi-square goodness-of-fit test against the same null
	// (tail-sensitive complement to KS).
	ChiSq stats.ChiSquareResult
	// Hist is the normalized stop-length histogram over [0, 300] s.
	Hist *stats.Histogram
}

// Fig3 reproduces Figure 3: the probability distribution of stop lengths
// for each area, including the KS rejection of exponentiality.
func Fig3(o Options, f *fleet.Fleet) ([]Fig3Area, string, error) {
	var results []Fig3Area
	var sb strings.Builder
	sb.WriteString(header("Figure 3: distribution of stop length"))

	chart := &textplot.LineChart{
		Title:  "Stop-length density by area (0-300 s)",
		Width:  84,
		Height: 16,
	}
	for _, area := range f.Areas() {
		stops := f.AllStops(area)
		sum, err := stats.Describe(stops)
		if err != nil {
			return nil, "", fmt.Errorf("experiments: fig3 %s: %w", area, err)
		}
		null := dist.NewExponentialMean(sum.Mean)
		ks, err := stats.KSOneSample(stops, null.CDF)
		if err != nil {
			return nil, "", err
		}
		chi, err := stats.ChiSquareGOF(stops, null.CDF, 40, 1)
		if err != nil {
			return nil, "", err
		}
		hist, err := stats.NewHistogram(stops, 0, 300, 60)
		if err != nil {
			return nil, "", err
		}
		results = append(results, Fig3Area{
			Area: area, Vehicles: len(f.ByArea(area)), Stops: len(stops),
			Summary: sum, KS: ks, ChiSq: chi, Hist: hist,
		})
		xs := make([]float64, len(hist.Counts))
		ys := make([]float64, len(hist.Counts))
		for i := range hist.Counts {
			xs[i] = hist.BinCenter(i)
			ys[i] = hist.Density(i)
		}
		chart.Add(textplot.Series{Name: area, X: xs, Y: ys})
	}
	sb.WriteString(chart.Render())
	sb.WriteString("\n")

	rows := [][]string{{"area", "vehicles", "stops", "mean (s)", "median (s)", "P(y>28)", "P(y>47)", "KS D", "KS p", "chi2 p", "exponential?"}}
	for _, r := range results {
		stops := f.AllStops(r.Area)
		verdict := "rejected"
		if !r.KS.Rejects(0.01) {
			verdict = "not rejected"
		}
		rows = append(rows, []string{
			r.Area,
			fmt.Sprintf("%d", r.Vehicles),
			fmt.Sprintf("%d", r.Stops),
			fmt.Sprintf("%.1f", r.Summary.Mean),
			fmt.Sprintf("%.1f", r.Summary.Median),
			fmt.Sprintf("%.3f", 1-fracAtMost(stops, 28)),
			fmt.Sprintf("%.3f", 1-fracAtMost(stops, 47)),
			fmt.Sprintf("%.4f", r.KS.D),
			fmt.Sprintf("%.2g", r.KS.P),
			fmt.Sprintf("%.2g", r.ChiSq.P),
			verdict,
		})
	}
	sb.WriteString(textplot.Table(rows))
	sb.WriteString("\nBoth the KS and the chi-square tests reject the exponential fit for every\narea (heavy tails), as reported in Section 5.\n")

	// Cross-area shape comparison: the paper reports the areas' shapes
	// are "quite similar" (justifying Figure 5's scale-Chicago's-shape
	// methodology). Compare mean-normalized stop lengths pairwise.
	areas := f.Areas()
	norm := map[string][]float64{}
	for _, a := range areas {
		sa := f.AllStops(a)
		m := stats.Mean(sa)
		ns := make([]float64, len(sa))
		for i, y := range sa {
			ns[i] = y / m
		}
		norm[a] = ns
	}
	shapeRows := [][]string{{"areas", "KS D (mean-normalized)"}}
	for i := 0; i < len(areas); i++ {
		for j := i + 1; j < len(areas); j++ {
			res, err := stats.KSTwoSample(norm[areas[i]], norm[areas[j]])
			if err != nil {
				return nil, "", err
			}
			shapeRows = append(shapeRows, []string{
				fmt.Sprintf("%s vs %s", areas[i], areas[j]),
				fmt.Sprintf("%.4f", res.D),
			})
		}
	}
	sb.WriteString("\nCross-area shape comparison (paper: shapes \"quite similar\"):\n\n")
	sb.WriteString(textplot.Table(shapeRows))
	sb.WriteString("\nSubstitution note: in our synthetic fleet California and Atlanta share a\n")
	sb.WriteString("normalized shape, but Chicago's differs — its heavier long-stop mix is what\n")
	sb.WriteString("reproduces the published mean-CR ordering (Chicago worst). The real NREL\n")
	sb.WriteString("shapes are reported similar; our substitute prioritizes the CR ordering.\n")
	return results, sb.String(), nil
}

func fracAtMost(xs []float64, b float64) float64 {
	return stats.FracAtMost(xs, b)
}
