package experiments

import (
	"fmt"
	"strings"

	"idlereduce/internal/costmodel"
	"idlereduce/internal/textplot"
)

// AppendixCResult holds the break-even derivation for both vehicle
// classes.
type AppendixCResult struct {
	FuelPriceUSDPerGallon float64
	IdlingCentsPerSec     float64
	SSV                   costmodel.Breakdown
	Conventional          costmodel.Breakdown
}

// AppendixC reproduces the Appendix C calculation of the break-even
// interval B for the Argonne test vehicle at the paper's $3.50/gal.
func AppendixC(o Options) (*AppendixCResult, string, error) {
	const fuelPrice = 3.5
	ssv := costmodel.NewFordFusion2011(fuelPrice, true)
	conv := costmodel.NewFordFusion2011(fuelPrice, false)
	bdSSV, err := ssv.BreakEven()
	if err != nil {
		return nil, "", fmt.Errorf("experiments: appendix C: %w", err)
	}
	bdConv, err := conv.BreakEven()
	if err != nil {
		return nil, "", fmt.Errorf("experiments: appendix C: %w", err)
	}
	res := &AppendixCResult{
		FuelPriceUSDPerGallon: fuelPrice,
		IdlingCentsPerSec:     ssv.IdlingCostCentsPerSec(),
		SSV:                   bdSSV,
		Conventional:          bdConv,
	}

	var sb strings.Builder
	sb.WriteString(header("Appendix C: break-even interval B"))
	sb.WriteString(fmt.Sprintf("Vehicle: 2011 Ford Fusion 2.5 L (Argonne test), fuel $%.2f/gal\n", fuelPrice))
	sb.WriteString(fmt.Sprintf("Idling cost: %.4f cents/s (paper: 0.0258 cents/s)\n\n", res.IdlingCentsPerSec))
	tbl := [][]string{
		{"component", "SSV (s)", "conventional (s)"},
		{"fuel (restart = 10 s idle)", fmt.Sprintf("%.2f", bdSSV.FuelSec), fmt.Sprintf("%.2f", bdConv.FuelSec)},
		{"starter wear", fmt.Sprintf("%.2f", bdSSV.StarterSec), fmt.Sprintf("%.2f", bdConv.StarterSec)},
		{"battery wear", fmt.Sprintf("%.2f", bdSSV.BatterySec), fmt.Sprintf("%.2f", bdConv.BatterySec)},
		{"NOx emissions", fmt.Sprintf("%.2f", bdSSV.EmissionSec), fmt.Sprintf("%.2f", bdConv.EmissionSec)},
		{"total B", fmt.Sprintf("%.2f", bdSSV.TotalSec()), fmt.Sprintf("%.2f", bdConv.TotalSec())},
	}
	sb.WriteString(textplot.Table(tbl))
	sb.WriteString(fmt.Sprintf("\nPaper headline minima: B = %.0f s (SSV), B = %.0f s (conventional);\nthe paper floors its component estimates, ours sum the same components exactly.\n",
		costmodel.PaperBreakEvenSSV, costmodel.PaperBreakEvenConventional))
	return res, sb.String(), nil
}
