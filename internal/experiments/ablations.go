package experiments

import (
	"fmt"
	"math"
	"strings"

	"idlereduce/internal/adaptive"
	"idlereduce/internal/analysis"
	"idlereduce/internal/fleet"
	"idlereduce/internal/skirental"
	"idlereduce/internal/textplot"
)

// AblationResult holds the design-choice studies of DESIGN.md §4.
type AblationResult struct {
	// BDetFullMeanCR / BDetOffMeanCR: mean worst-case CR over the
	// feasible statistics grid with and without the b-DET vertex.
	BDetFullMeanCR float64
	BDetOffMeanCR  float64
	// BDetMaxGain is the largest pointwise CR improvement b-DET provides.
	BDetMaxGain float64

	// EstExactMeanCR / EstTrainedMeanCR: fleet mean CR with exact
	// test-half statistics vs statistics estimated from the train half.
	EstExactMeanCR   float64
	EstTrainedMeanCR float64

	// AvgMatchedCR / AvgMismatchedCR / ProposedMismatchedCR: the
	// average-case baseline (Fujiwara-Iwama, tuned to the area
	// distribution) evaluated on vehicles of its own area vs the
	// proposed policy, demonstrating the fragility argument of Sec. 2.2.
	AvgMeanCR      float64
	ProposedMeanCR float64
	// AvgMismatchMeanCR / ProposedMismatchMeanCR: AVG tuned to
	// California's distribution but deployed on Chicago vehicles.
	AvgMismatchMeanCR      float64
	ProposedMismatchMeanCR float64
	// PlainSmallSampleMeanCR / RobustSmallSampleMeanCR: selection from a
	// single day of stops, evaluated on the remaining week — the plain
	// point-estimate selector vs the confidence-rectangle robust variant.
	PlainSmallSampleMeanCR  float64
	RobustSmallSampleMeanCR float64
	// LPOptMeanCR / ProposedLPSampleMeanCR: the numerically optimal
	// LP-OPT policy vs the paper's selector on the same vehicle
	// subsample.
	LPOptMeanCR            float64
	ProposedLPSampleMeanCR float64
	// AdaptiveMeanCR / StaticMeanCR: online-estimated statistics vs
	// clairvoyant trace statistics.
	AdaptiveMeanCR float64
	StaticMeanCR   float64
}

// Ablations runs the design-choice studies on a (scaled) fleet and
// renders a report.
func Ablations(o Options, f *fleet.Fleet) (*AblationResult, string, error) {
	o = o.withDefaults()
	ssv, _ := BreakEvens()
	res := &AblationResult{}

	// 1. b-DET vertex on/off over the statistics grid.
	var full, off stats2
	res.BDetMaxGain = 0
	for mu := 0.0; mu <= 1.0; mu += 0.02 {
		for q := 0.0; q <= 1.0; q += 0.02 {
			s := skirental.Stats{MuBMinus: mu * ssv, QBPlus: q}
			if s.Validate(ssv) != nil {
				continue
			}
			offCost := s.OfflineCost(ssv)
			if offCost == 0 {
				continue
			}
			vc := skirental.ComputeVertexCosts(ssv, s)
			_, fullCost := vc.Select()
			restricted := math.Min(vc.NRand, math.Min(vc.TOI, vc.DET))
			full.add(fullCost / offCost)
			off.add(restricted / offCost)
			if g := (restricted - fullCost) / offCost; g > res.BDetMaxGain {
				res.BDetMaxGain = g
			}
		}
	}
	res.BDetFullMeanCR = full.mean()
	res.BDetOffMeanCR = off.mean()

	// 2. Plug-in estimation: train on the first half-week, test on the
	// second.
	var exact, trained stats2
	for _, v := range f.Vehicles {
		if len(v.Stops) < 8 {
			continue
		}
		half := len(v.Stops) / 2
		train, test := v.Stops[:half], v.Stops[half:]
		pTrain, err := skirental.NewConstrainedFromStops(ssv, train)
		if err != nil {
			return nil, "", fmt.Errorf("experiments: ablation estimation: %w", err)
		}
		pExact, err := skirental.NewConstrainedFromStops(ssv, test)
		if err != nil {
			return nil, "", err
		}
		trained.add(skirental.TraceCR(pTrain, test))
		exact.add(skirental.TraceCR(pExact, test))
	}
	res.EstExactMeanCR = exact.mean()
	res.EstTrainedMeanCR = trained.mean()

	// 3. Average-case baseline fragility: tune AVG to each area's
	// aggregate distribution, evaluate per vehicle against the proposed
	// policy tuned to the vehicle's own statistics.
	var avg, prop stats2
	for _, areaCfg := range fleet.DefaultAreas() {
		vs := f.ByArea(areaCfg.Name)
		if len(vs) == 0 {
			continue
		}
		areaDist := areaCfg.StopLengthDistribution()
		avgPol, err := skirental.NewAverageCase(areaDist, ssv)
		if err != nil {
			return nil, "", fmt.Errorf("experiments: ablation AVG: %w", err)
		}
		for _, v := range vs {
			p, err := skirental.NewConstrainedFromStops(ssv, v.Stops)
			if err != nil {
				return nil, "", err
			}
			avg.add(skirental.TraceCR(avgPol, v.Stops))
			prop.add(skirental.TraceCR(p, v.Stops))
		}
	}
	res.AvgMeanCR = avg.mean()
	res.ProposedMeanCR = prop.mean()

	// 3b. The mismatch case: AVG tuned to California's light traffic,
	// deployed on Chicago's gridlock vehicles.
	var avgMis, propMis stats2
	if chicago := f.ByArea("Chicago"); len(chicago) > 0 {
		avgPol, err := skirental.NewAverageCase(fleet.California.StopLengthDistribution(), ssv)
		if err != nil {
			return nil, "", err
		}
		for _, v := range chicago {
			p, err := skirental.NewConstrainedFromStops(ssv, v.Stops)
			if err != nil {
				return nil, "", err
			}
			avgMis.add(skirental.TraceCR(avgPol, v.Stops))
			propMis.add(skirental.TraceCR(p, v.Stops))
		}
	}
	res.AvgMismatchMeanCR = avgMis.mean()
	res.ProposedMismatchMeanCR = propMis.mean()

	// 3c. LP-OPT (the numerically optimal unrestricted policy) vs the
	// paper's vertex selector, both built from each vehicle's own
	// statistics. Most fleet vehicles live in the DET region where the
	// two coincide, so the realized gain is small even though LP-OPT's
	// worst-case guarantee is strictly better in the randomized regions.
	var lpOpt, propForLP stats2
	for i, v := range f.Vehicles {
		if i%5 != 0 {
			continue // subsample: the LP is the expensive step
		}
		st, err := skirental.EstimateStats(v.Stops, ssv)
		if err != nil {
			return nil, "", err
		}
		mm, err := analysis.MinimaxLP(ssv, st, 48)
		if err != nil {
			return nil, "", fmt.Errorf("experiments: ablation LP-OPT: %w", err)
		}
		pol, err := mm.Policy(ssv)
		if err != nil {
			return nil, "", err
		}
		prop2, err := skirental.NewConstrained(ssv, st)
		if err != nil {
			return nil, "", err
		}
		lpOpt.add(skirental.TraceCR(pol, v.Stops))
		propForLP.add(skirental.TraceCR(prop2, v.Stops))
	}
	res.LPOptMeanCR = lpOpt.mean()
	res.ProposedLPSampleMeanCR = propForLP.mean()

	// 3d. Robust (confidence-rectangle) vs plain selection from one day
	// of data, evaluated on the remaining week: does guarding against
	// estimation error pay when samples are small?
	var plainSmall, robustSmall stats2
	for _, v := range f.Vehicles {
		dayN := v.StopsPerDay[0]
		if dayN < 3 || len(v.Stops)-dayN < 5 {
			continue
		}
		train, test := v.Stops[:dayN], v.Stops[dayN:]
		plainPol, err := skirental.NewConstrainedFromStops(ssv, train)
		if err != nil {
			return nil, "", err
		}
		robustPol, err := skirental.NewRobustConstrainedFromStops(ssv, train, 0.95)
		if err != nil {
			return nil, "", err
		}
		plainSmall.add(skirental.TraceCR(plainPol, test))
		robustSmall.add(skirental.TraceCR(robustPol, test))
	}
	res.PlainSmallSampleMeanCR = plainSmall.mean()
	res.RobustSmallSampleMeanCR = robustSmall.mean()

	// 4. Adaptive (streaming estimates) vs static (whole-trace
	// statistics).
	var adap, static stats2
	for _, v := range f.Vehicles {
		p, err := adaptive.New(adaptive.Config{B: ssv})
		if err != nil {
			return nil, "", err
		}
		on, offC, err := p.RunMean(v.Stops)
		if err != nil {
			return nil, "", err
		}
		if offC == 0 {
			continue
		}
		adap.add(on / offC)
		sp, err := skirental.NewConstrainedFromStops(ssv, v.Stops)
		if err != nil {
			return nil, "", err
		}
		static.add(skirental.TraceCR(sp, v.Stops))
	}
	res.AdaptiveMeanCR = adap.mean()
	res.StaticMeanCR = static.mean()

	var sb strings.Builder
	sb.WriteString(header("Ablations: design choices (B = 28 s)"))
	tbl := [][]string{
		{"ablation", "with", "without", "delta"},
		{"b-DET vertex (grid mean worst CR)",
			fmt.Sprintf("%.4f", res.BDetFullMeanCR),
			fmt.Sprintf("%.4f", res.BDetOffMeanCR),
			fmt.Sprintf("%.4f (max pointwise %.4f)", res.BDetOffMeanCR-res.BDetFullMeanCR, res.BDetMaxGain)},
		{"exact vs trained statistics (fleet mean CR)",
			fmt.Sprintf("%.4f", res.EstExactMeanCR),
			fmt.Sprintf("%.4f", res.EstTrainedMeanCR),
			fmt.Sprintf("%.4f", res.EstTrainedMeanCR-res.EstExactMeanCR)},
		{"proposed vs area-tuned AVG (fleet mean CR)",
			fmt.Sprintf("%.4f", res.ProposedMeanCR),
			fmt.Sprintf("%.4f", res.AvgMeanCR),
			fmt.Sprintf("%.4f", res.AvgMeanCR-res.ProposedMeanCR)},
		{"... AVG tuned CA, deployed on Chicago",
			fmt.Sprintf("%.4f", res.ProposedMismatchMeanCR),
			fmt.Sprintf("%.4f", res.AvgMismatchMeanCR),
			fmt.Sprintf("%.4f", res.AvgMismatchMeanCR-res.ProposedMismatchMeanCR)},
		{"proposed vs LP-OPT (vehicle subsample mean CR)",
			fmt.Sprintf("%.4f", res.ProposedLPSampleMeanCR),
			fmt.Sprintf("%.4f", res.LPOptMeanCR),
			fmt.Sprintf("%.4f", res.LPOptMeanCR-res.ProposedLPSampleMeanCR)},
		{"plain vs robust selector (1-day sample)",
			fmt.Sprintf("%.4f", res.PlainSmallSampleMeanCR),
			fmt.Sprintf("%.4f", res.RobustSmallSampleMeanCR),
			fmt.Sprintf("%.4f", res.RobustSmallSampleMeanCR-res.PlainSmallSampleMeanCR)},
		{"static vs adaptive statistics (fleet mean CR)",
			fmt.Sprintf("%.4f", res.StaticMeanCR),
			fmt.Sprintf("%.4f", res.AdaptiveMeanCR),
			fmt.Sprintf("%.4f", res.AdaptiveMeanCR-res.StaticMeanCR)},
	}
	sb.WriteString(textplot.Table(tbl))
	sb.WriteString("\nReading: the b-DET vertex buys its improvement in the small-mu band (Fig. 2c-d);\n")
	sb.WriteString("the robust selector trades average CR for a guaranteed bound — with one day of\n")
	sb.WriteString("data its wide confidence rectangle falls back to N-Rand on vehicles where the\n")
	sb.WriteString("point estimate (correctly, in this traffic) gambles on DET;\n")
	sb.WriteString("plug-in and streaming estimation cost ~0.01-0.05 CR; the known-distribution AVG\n")
	sb.WriteString("baseline edges out the proposed policy when traffic matches its design distribution\n")
	sb.WriteString("(it uses strictly more information) but degrades under mismatch, while the proposed\n")
	sb.WriteString("policy keeps its guarantee — the paper's case against average-case tuning.\n")
	return res, sb.String(), nil
}

// stats2 is a small mean accumulator.
type stats2 struct {
	sum float64
	n   int
}

func (s *stats2) add(v float64) { s.sum += v; s.n++ }
func (s *stats2) mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.n)
}
