package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"idlereduce/internal/analysis"
	"idlereduce/internal/skirental"
	"idlereduce/internal/textplot"
)

// Fig1Result holds the Figure 1 dataset: the strategy-region grid and the
// worst-case CR surface.
type Fig1Result struct {
	B     float64
	Cells []analysis.RegionCell
	// MaxCR is the largest worst-case CR on the feasible grid (the peak
	// of Figure 1b, bounded by e/(e-1)).
	MaxCR float64
	// Share maps each strategy to its fraction of feasible cells.
	Share map[skirental.Choice]float64
}

// Fig1 computes the strategy-region map (Fig. 1a) and CR surface
// (Fig. 1b) for break-even interval b.
func Fig1(o Options, b float64) (*Fig1Result, string) {
	res, out, err := Fig1Context(context.Background(), o, b)
	if err != nil {
		panic(err) // unreachable with a background context
	}
	return res, out
}

// Fig1Context is Fig1 under a context: cancellable, and when ctx carries
// an obs.Recorder the grid fill publishes its pool metrics. The only
// error source is ctx cancellation.
func Fig1Context(ctx context.Context, o Options, b float64) (*Fig1Result, string, error) {
	o = o.withDefaults()
	cells, err := analysis.StrategyRegionsContext(ctx, b, o.GridN, o.GridN, o.Workers)
	if err != nil {
		return nil, "", err
	}
	res := &Fig1Result{B: b, Cells: cells, Share: map[skirental.Choice]float64{}}
	feasible := 0
	for _, c := range cells {
		if !c.Feasible {
			continue
		}
		feasible++
		res.Share[c.Choice]++
		if c.CR > res.MaxCR {
			res.MaxCR = c.CR
		}
	}
	for k := range res.Share {
		res.Share[k] /= float64(feasible)
	}

	// Render the region map as a heatmap; rows indexed by q (bottom 0).
	glyph := map[skirental.Choice]rune{
		skirental.ChoiceNRand: 'N',
		skirental.ChoiceTOI:   'T',
		skirental.ChoiceDET:   'D',
		skirental.ChoiceBDet:  'b',
	}
	n := o.GridN + 1
	rows := make([][]rune, n)
	for j := 0; j < n; j++ {
		rows[j] = []rune(strings.Repeat(".", n))
	}
	for _, c := range cells {
		i := int(math.Round(c.MuFrac * float64(o.GridN)))
		j := int(math.Round(c.Q * float64(o.GridN)))
		if c.Feasible {
			rows[j][i] = glyph[c.Choice]
		}
	}
	hm := &textplot.Heatmap{
		Title:  fmt.Sprintf("Figure 1a: optimal strategy over (mu_B-/B, q_B+), B = %.0f s", b),
		XLabel: "mu_B-/B: 0 (left) to 1 (right)",
		YLabel: "q_B+: 0 (bottom) to 1 (top)",
		Cells:  rows,
		Legend: []textplot.LegendEntry{
			{Glyph: 'D', Desc: "DET (idle until B)"},
			{Glyph: 'T', Desc: "TOI (turn off immediately)"},
			{Glyph: 'b', Desc: "b-DET (idle until sqrt(mu B / q))"},
			{Glyph: 'N', Desc: "N-Rand (randomized)"},
			{Glyph: '.', Desc: "infeasible (mu > B(1-q))"},
		},
	}

	// Figure 1b: the worst-case CR surface, rendered as a digit heatmap
	// (0 = CR 1.0 ... 9 = CR e/(e-1)).
	crRows := make([][]rune, n)
	for j := 0; j < n; j++ {
		crRows[j] = []rune(strings.Repeat(".", n))
	}
	crMax := math.E / (math.E - 1)
	for _, c := range cells {
		i := int(math.Round(c.MuFrac * float64(o.GridN)))
		j := int(math.Round(c.Q * float64(o.GridN)))
		if !c.Feasible {
			continue
		}
		level := int(math.Round((c.CR - 1) / (crMax - 1) * 9))
		if level < 0 {
			level = 0
		}
		if level > 9 {
			level = 9
		}
		crRows[j][i] = rune('0' + level)
	}
	crMap := &textplot.Heatmap{
		Title:  fmt.Sprintf("Figure 1b: worst-case CR surface (0 = 1.0 ... 9 = %.3f)", crMax),
		XLabel: "mu_B-/B: 0 (left) to 1 (right)",
		YLabel: "q_B+: 0 (bottom) to 1 (top)",
		Cells:  crRows,
	}

	var sb strings.Builder
	sb.WriteString(header("Figure 1: proposed online algorithm"))
	sb.WriteString(hm.Render())
	sb.WriteString("\n")
	sb.WriteString(crMap.Render())
	sb.WriteString("\n")
	sb.WriteString(fmt.Sprintf("Figure 1b summary: worst-case CR peaks at %.4f (bound e/(e-1) = %.4f)\n",
		res.MaxCR, math.E/(math.E-1)))
	rows2 := [][]string{{"strategy", "share of feasible (mu, q) grid"}}
	for _, ch := range []skirental.Choice{skirental.ChoiceDET, skirental.ChoiceTOI, skirental.ChoiceBDet, skirental.ChoiceNRand} {
		rows2 = append(rows2, []string{ch.String(), fmt.Sprintf("%5.1f%%", res.Share[ch]*100)})
	}
	sb.WriteString(textplot.Table(rows2))
	return res, sb.String(), nil
}
