package experiments

import (
	"context"
	"fmt"
	"strings"

	"idlereduce/internal/analysis"
	"idlereduce/internal/textplot"
)

// Fig2Result holds one projection slice of Figure 2.
type Fig2Result struct {
	B      float64
	MuFrac float64
	Points []analysis.ProjectionPoint
}

// Fig2 computes the Figure 2 projections: worst-case CR of each strategy
// versus q_B+ at the paper's fixed mu_B- slices (0.02B and 0.05B for the
// b-DET panels, plus a mid-range slice).
func Fig2(o Options, b float64) ([]Fig2Result, string) {
	results, out, err := Fig2Context(context.Background(), o, b)
	if err != nil {
		panic(err) // unreachable with a background context
	}
	return results, out
}

// Fig2Context is Fig2 under a context: cancellable, and when ctx carries
// an obs.Recorder the projection fills publish their pool metrics. The
// only error source is ctx cancellation.
func Fig2Context(ctx context.Context, o Options, b float64) ([]Fig2Result, string, error) {
	o = o.withDefaults()
	var sb strings.Builder
	sb.WriteString(header("Figure 2: projected views of the worst-case CR"))
	var results []Fig2Result
	for _, muFrac := range []float64{0.02, 0.05, 0.30} {
		pts, err := analysis.ProjectionCurvesContext(ctx, b, muFrac, 1, 120, o.Workers)
		if err != nil {
			return nil, "", err
		}
		results = append(results, Fig2Result{B: b, MuFrac: muFrac, Points: pts})

		chart := &textplot.LineChart{
			Title:  fmt.Sprintf("Figure 2 slice: mu_B- = %.2fB, B = %.0f s (worst-case CR vs q_B+)", muFrac, b),
			Width:  84,
			Height: 18,
			YMin:   1,
			YMax:   2,
		}
		add := func(name string, pick func(analysis.ProjectionPoint) float64) {
			xs := make([]float64, 0, len(pts))
			ys := make([]float64, 0, len(pts))
			for _, p := range pts {
				xs = append(xs, p.Q)
				ys = append(ys, pick(p))
			}
			chart.Add(textplot.Series{Name: name, X: xs, Y: ys})
		}
		for _, n := range []string{"DET", "TOI", "N-Rand", "b-DET"} {
			name := n
			add(name, func(p analysis.ProjectionPoint) float64 { return p.Baselines[name] })
		}
		add("Proposed", func(p analysis.ProjectionPoint) float64 { return p.Proposed })
		sb.WriteString(chart.Render())
		sb.WriteString("\n")
	}
	return results, sb.String(), nil
}
