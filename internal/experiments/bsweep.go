package experiments

import (
	"context"
	"fmt"
	"strings"

	"idlereduce/internal/analysis"
	"idlereduce/internal/fleet"
	"idlereduce/internal/numeric"
	"idlereduce/internal/textplot"
)

// BSweepResult is the break-even sensitivity study.
type BSweepResult struct {
	Points []analysis.BreakEvenPoint
}

// BSweep sweeps the break-even interval over the Appendix C uncertainty
// range (fuel-only 10 s through the most pessimistic starter estimate)
// against Chicago traffic, reporting how the optimal strategy and its
// guarantee move.
func BSweep(o Options) (*BSweepResult, string, error) {
	return BSweepContext(context.Background(), o)
}

// BSweepContext is BSweep under a context: cancellable, and when ctx
// carries an obs.Recorder the sweep publishes its pool metrics.
func BSweepContext(ctx context.Context, o Options) (*BSweepResult, string, error) {
	o = o.withDefaults()
	traffic := fleet.Chicago.StopLengthDistribution()
	bs := numeric.Linspace(10, 150, 29)
	pts, err := analysis.BreakEvenSweepContext(ctx, traffic, bs, o.Workers)
	if err != nil {
		return nil, "", fmt.Errorf("experiments: bsweep: %w", err)
	}
	res := &BSweepResult{Points: pts}

	chart := &textplot.LineChart{
		Title:  "Break-even sensitivity: worst-case CR vs B (Chicago traffic)",
		Width:  84,
		Height: 16,
		YMin:   1,
		YMax:   2.2,
	}
	add := func(name string, pick func(analysis.BreakEvenPoint) float64) {
		s := textplot.Series{Name: name}
		for _, p := range pts {
			s.X = append(s.X, p.B)
			s.Y = append(s.Y, pick(p))
		}
		chart.Add(s)
	}
	add("DET", func(p analysis.BreakEvenPoint) float64 { return p.Baselines["DET"] })
	add("TOI", func(p analysis.BreakEvenPoint) float64 { return p.Baselines["TOI"] })
	add("N-Rand", func(p analysis.BreakEvenPoint) float64 { return p.Baselines["N-Rand"] })
	add("Proposed", func(p analysis.BreakEvenPoint) float64 { return p.Proposed })

	var sb strings.Builder
	sb.WriteString(header("Break-even sensitivity (Appendix C uncertainty)"))
	sb.WriteString(chart.Render())
	sb.WriteString("\n")
	rows := [][]string{{"B (s)", "mu_B-", "q_B+", "Proposed CR", "choice"}}
	for i, p := range pts {
		if i%4 != 0 && i != len(pts)-1 {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.B),
			fmt.Sprintf("%.1f", p.Stats.MuBMinus),
			fmt.Sprintf("%.3f", p.Stats.QBPlus),
			fmt.Sprintf("%.4f", p.Proposed),
			p.Choice.String(),
		})
	}
	sb.WriteString(textplot.Table(rows))
	sb.WriteString("\nAppendix C places B anywhere from 10 s (fuel only) to ~150 s (pessimistic\n")
	sb.WriteString("starter wear); the proposed guarantee stays within [1, e/(e-1)] across the\n")
	sb.WriteString("whole band, so a misestimated B degrades gracefully.\n")
	return res, sb.String(), nil
}
