package experiments

import (
	"fmt"
	"strings"

	"idlereduce/internal/costmodel"
	"idlereduce/internal/fleet"
	"idlereduce/internal/simulator"
	"idlereduce/internal/skirental"
	"idlereduce/internal/stats"
	"idlereduce/internal/textplot"
)

// SavingsPolicy aggregates one policy's annualized savings over the fleet.
type SavingsPolicy struct {
	Policy string
	// PerVehicle is the mean annual saving per vehicle.
	PerVehicle costmodel.Savings
	// FleetUSD extrapolates the monetary saving to the whole fleet.
	FleetUSD float64
}

// SavingsResult is the fleet-wide annualized savings study.
type SavingsResult struct {
	Vehicles int
	Policies []SavingsPolicy
}

// FleetSavings simulates each policy over every vehicle's week and
// annualizes the fuel, money and idling saved relative to never turning
// the engine off — the paper's motivating numbers (6B gallons, $20B/year
// in the US) reduced to this fleet.
func FleetSavings(o Options, f *fleet.Fleet) (*SavingsResult, string, error) {
	o = o.withDefaults()
	vehicle := costmodel.NewFordFusion2011(3.5, true)
	costs, err := vehicle.Costs()
	if err != nil {
		return nil, "", err
	}
	b := costs.B()

	res := &SavingsResult{Vehicles: len(f.Vehicles)}
	for _, polName := range []string{"Proposed", "TOI", "DET"} {
		var totals costmodel.Savings
		for _, v := range f.Vehicles {
			var pol skirental.Policy
			switch polName {
			case "Proposed":
				p, err := skirental.NewConstrainedFromStops(b, v.Stops)
				if err != nil {
					return nil, "", err
				}
				pol = p
			case "TOI":
				pol = skirental.NewTOI(b)
			case "DET":
				pol = skirental.NewDET(b)
			}
			run, err := simulator.Run(simulator.Config{Costs: costs, Policy: pol}, v.Stops, stats.NewRNG(o.Seed^uint64(len(v.Stops))))
			if err != nil {
				return nil, "", fmt.Errorf("experiments: savings %s/%s: %w", polName, v.ID, err)
			}
			totalStop := 0.0
			for _, y := range v.Stops {
				totalStop += y
			}
			s, err := vehicle.AnnualSavings(run.IdleSec, totalStop, run.Restarts, 7)
			if err != nil {
				return nil, "", err
			}
			totals.IdleSecondsSaved += s.IdleSecondsSaved
			totals.FuelLiters += s.FuelLiters
			totals.USD += s.USD
			totals.Restarts += s.Restarts
		}
		n := float64(len(f.Vehicles))
		per := costmodel.Savings{
			IdleSecondsSaved: totals.IdleSecondsSaved / n,
			FuelLiters:       totals.FuelLiters / n,
			USD:              totals.USD / n,
			Restarts:         totals.Restarts / n,
		}
		res.Policies = append(res.Policies, SavingsPolicy{
			Policy:     polName,
			PerVehicle: per,
			FleetUSD:   totals.USD,
		})
	}

	var sb strings.Builder
	sb.WriteString(header("Annualized savings vs never turning off (SSV cost model)"))
	sb.WriteString(fmt.Sprintf("Fleet: %d vehicles, one observed week each, extrapolated to a year.\n\n", res.Vehicles))
	rows := [][]string{{"policy", "idle saved (h/veh/yr)", "fuel (L/veh/yr)", "net $/veh/yr", "restarts/veh/yr", "fleet $/yr"}}
	for _, p := range res.Policies {
		rows = append(rows, []string{
			p.Policy,
			fmt.Sprintf("%.1f", p.PerVehicle.IdleSecondsSaved/3600),
			fmt.Sprintf("%.1f", p.PerVehicle.FuelLiters),
			fmt.Sprintf("%.2f", p.PerVehicle.USD),
			fmt.Sprintf("%.0f", p.PerVehicle.Restarts),
			fmt.Sprintf("%.0f", p.FleetUSD),
		})
	}
	sb.WriteString(textplot.Table(rows))
	sb.WriteString("\nTOI saves the most idling but pays for it in restarts; the proposed policy\n")
	sb.WriteString("keeps nearly all of the saving while restarting far less — the tradeoff the\n")
	sb.WriteString("break-even analysis of Appendix C is for. (The paper's US-wide motivation:\n")
	sb.WriteString(">6 billion gallons and $20B of idling waste per year.)\n")
	return res, sb.String(), nil
}
