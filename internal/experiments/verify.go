package experiments

import (
	"fmt"
	"math"
	"strings"

	"idlereduce/internal/analysis"
	"idlereduce/internal/numeric"
	"idlereduce/internal/skirental"
	"idlereduce/internal/textplot"
)

// VerifyResult collects the numerical cross-checks of the paper's
// derivations.
type VerifyResult struct {
	// ODEMaxErr is the largest deviation between the RK4-integrated
	// eq. 29 and the analytic density eq. 30 over [0, B].
	ODEMaxErr float64
	// VertexLPAgree reports whether the simplex solution of eq. 32-33
	// agreed with the closed-form enumeration at every grid point.
	VertexLPAgree bool
	// AdversaryMaxRelErr is the largest relative gap between the
	// adversarial search and the closed-form worst-case CRs of the
	// vertex strategies.
	AdversaryMaxRelErr float64
	// Minimax holds per-region results of the unrestricted minimax LP.
	Minimax []MinimaxCheck
	// Improvement summarizes the LP-OPT gain over the whole statistics
	// grid, grouped by the paper's selected vertex.
	Improvement []analysis.ImprovementSummary
}

// MinimaxCheck is one region's comparison of the unrestricted LP optimum
// against the paper's closed form.
type MinimaxCheck struct {
	Region   string
	Stats    skirental.Stats
	ClosedCR float64
	LPCR     float64
	TrueCR   float64 // LP policy's continuum worst case (adversarial search)
	Improves bool
}

// Verify runs the full verification suite for break-even b.
func Verify(o Options, b float64) (*VerifyResult, string, error) {
	o = o.withDefaults()
	res := &VerifyResult{VertexLPAgree: true}

	// 1. ODE (eq. 29) vs analytic density (eq. 30).
	c0 := 1 / (b * (math.E - 1))
	for _, frac := range numeric.Linspace(0.1, 1, 10) {
		x := frac * b
		got := numeric.RK4(func(_, p float64) float64 { return p / b }, 0, c0, x, 400)
		want := c0 * math.Exp(x/b)
		if e := math.Abs(got - want); e > res.ODEMaxErr {
			res.ODEMaxErr = e
		}
	}

	// 2. Vertex LP vs closed-form enumeration on a grid.
	for mu := 0.0; mu <= 1.0; mu += 0.05 {
		for q := 0.0; q <= 1.0; q += 0.05 {
			s := skirental.Stats{MuBMinus: mu * b, QBPlus: q}
			if s.Validate(b) != nil {
				continue
			}
			_, lpCost, err := skirental.SelectVertexLP(b, s)
			if err != nil {
				return nil, "", fmt.Errorf("experiments: verify vertex LP: %w", err)
			}
			_, enumCost := skirental.ComputeVertexCosts(b, s).Select()
			if math.Abs(lpCost-enumCost) > 1e-6*(1+enumCost) {
				res.VertexLPAgree = false
			}
		}
	}

	// 3. Adversarial search vs closed forms for the vertex strategies.
	for _, s := range []skirental.Stats{
		{MuBMinus: 2, QBPlus: 0.1},
		{MuBMinus: 5, QBPlus: 0.3},
		{MuBMinus: 0.5, QBPlus: 0.7},
	} {
		for _, name := range []string{"TOI", "DET", "N-Rand"} {
			var p skirental.Policy
			switch name {
			case "TOI":
				p = skirental.NewTOI(b)
			case "DET":
				p = skirental.NewDET(b)
			default:
				p = skirental.NewNRand(b)
			}
			want := skirental.BaselineWorstCaseCR(name, b, s)
			got := analysis.WorstCaseSearch(p, s, 256).CR
			if rel := math.Abs(got-want) / want; rel > res.AdversaryMaxRelErr {
				res.AdversaryMaxRelErr = rel
			}
		}
	}

	// 4. Unrestricted minimax LP per region.
	regions := []struct {
		name string
		s    skirental.Stats
	}{
		{"DET", skirental.Stats{MuBMinus: 2, QBPlus: 0.01}},
		{"TOI", skirental.Stats{MuBMinus: 0.5, QBPlus: 0.95}},
		{"b-DET", skirental.Stats{MuBMinus: 0.02 * b, QBPlus: 0.3}},
		{"N-Rand", skirental.Stats{MuBMinus: 0.1 * b, QBPlus: 0.5}},
	}
	for _, r := range regions {
		mm, err := analysis.MinimaxLP(b, r.s, 96)
		if err != nil {
			return nil, "", fmt.Errorf("experiments: verify minimax %s: %w", r.name, err)
		}
		_, closed := skirental.ComputeVertexCosts(b, r.s).Select()
		off := r.s.OfflineCost(b)
		check := MinimaxCheck{
			Region:   r.name,
			Stats:    r.s,
			ClosedCR: closed / off,
			LPCR:     mm.CR,
		}
		pol, err := mm.Policy(b)
		if err != nil {
			return nil, "", err
		}
		check.TrueCR = analysis.WorstCaseSearch(pol, r.s, 300).CR
		check.Improves = check.TrueCR < check.ClosedCR*0.995
		res.Minimax = append(res.Minimax, check)
	}

	// 5. Improvement map over the statistics grid.
	cells, err := analysis.ImprovementMap(b, 10, 48)
	if err != nil {
		return nil, "", fmt.Errorf("experiments: verify improvement map: %w", err)
	}
	res.Improvement = analysis.SummarizeImprovement(cells)

	var sb strings.Builder
	sb.WriteString(header(fmt.Sprintf("Verification suite (B = %.0f s)", b)))
	sb.WriteString(fmt.Sprintf("1. ODE eq.29 vs density eq.30: max abs error %.2e (RK4, 400 steps)\n", res.ODEMaxErr))
	sb.WriteString(fmt.Sprintf("2. Vertex LP (eq.32-33) vs closed-form enumeration: agree = %v\n", res.VertexLPAgree))
	sb.WriteString(fmt.Sprintf("3. Adversarial search vs closed-form worst CRs: max rel error %.3f%%\n\n", res.AdversaryMaxRelErr*100))
	sb.WriteString("4. Unrestricted minimax LP vs the paper's four-vertex optimum:\n\n")
	rows := [][]string{{"region", "mu_B-", "q_B+", "paper CR", "LP CR", "LP policy true CR", "improves?"}}
	for _, c := range res.Minimax {
		rows = append(rows, []string{
			c.Region,
			fmt.Sprintf("%.2f", c.Stats.MuBMinus),
			fmt.Sprintf("%.2f", c.Stats.QBPlus),
			fmt.Sprintf("%.4f", c.ClosedCR),
			fmt.Sprintf("%.4f", c.LPCR),
			fmt.Sprintf("%.4f", c.TrueCR),
			fmt.Sprintf("%v", c.Improves),
		})
	}
	sb.WriteString(textplot.Table(rows))
	sb.WriteString("\n5. LP-OPT improvement over the statistics grid, by the paper's selected vertex:\n\n")
	rows2 := [][]string{{"region", "grid cells", "mean CR gain", "max CR gain"}}
	for _, s2 := range res.Improvement {
		rows2 = append(rows2, []string{
			s2.Choice.String(),
			fmt.Sprintf("%d", s2.Cells),
			fmt.Sprintf("%.4f", s2.MeanGain),
			fmt.Sprintf("%.4f", s2.MaxGain),
		})
	}
	sb.WriteString(textplot.Table(rows2))
	sb.WriteString("\nFinding: the paper's selector is tight in the DET and TOI regions, but over\n")
	sb.WriteString("unrestricted randomized policies the minimax LP strictly improves on the\n")
	sb.WriteString("b-DET and N-Rand vertices — the eq. 18 solution family (equalizing density\n")
	sb.WriteString("plus three atoms) does not contain the true optimum there. The improvement\n")
	sb.WriteString("is confirmed by an independent adversarial search on the LP's policy.\n")
	return res, sb.String(), nil
}
