package experiments

import (
	"fmt"
	"strings"

	"idlereduce/internal/dist"
	"idlereduce/internal/drivecycle"
	"idlereduce/internal/skirental"
	"idlereduce/internal/stats"
	"idlereduce/internal/textplot"
)

// DriveCycleResult evaluates the policy lineup on mechanistic traffic
// (signal geometry, queue discharge, errand stops) instead of the
// statistical fleet model — the robustness check that the Figure 4
// conclusions do not depend on the synthetic distribution family.
type DriveCycleResult struct {
	Drivers int
	Stops   int
	// MeanCR maps policy name to its mean CR over drivers.
	MeanCR map[string]float64
	// ProposedBest counts drivers where the proposed policy is
	// (tied-)best.
	ProposedBest int
	// KS is the exponential-fit test on the pooled stop lengths.
	KS stats.KSResult
	// LjungBox tests one driver's stop sequence for serial correlation:
	// mechanistic traffic is NOT i.i.d. (the per-trip traffic state
	// lengthens a congested trip's stops together), a caveat when
	// applying the paper's exchangeable-stop analysis to real traces.
	LjungBox stats.ChiSquareResult
}

// DriveCycle runs the lineup over nDrivers weeks of the urban commute
// plan (scaled by Options.FleetVehicles when set).
func DriveCycle(o Options, b float64) (*DriveCycleResult, string, error) {
	o = o.withDefaults()
	nDrivers := 60
	if o.FleetVehicles > 0 {
		nDrivers = o.FleetVehicles
	}
	rng := stats.NewRNG(o.Seed ^ 0xdc)
	plan := drivecycle.UrbanCommute()

	res := &DriveCycleResult{Drivers: nDrivers, MeanCR: map[string]float64{}}
	sums := map[string]float64{}
	var pooled []float64
	for d := 0; d < nDrivers; d++ {
		week, err := plan.Week(rng)
		if err != nil {
			return nil, "", fmt.Errorf("experiments: drivecycle: %w", err)
		}
		pooled = append(pooled, week...)
		res.Stops += len(week)

		mean := stats.Mean(week)
		prop, err := skirental.NewConstrainedFromStops(b, week)
		if err != nil {
			return nil, "", err
		}
		policies := map[string]skirental.Policy{
			"TOI":      skirental.NewTOI(b),
			"NEV":      skirental.NewNEV(b),
			"DET":      skirental.NewDET(b),
			"N-Rand":   skirental.NewNRand(b),
			"MOM-Rand": skirental.NewMOMRand(b, mean),
			"Proposed": prop,
		}
		best := ""
		bestCR := 0.0
		for name, p := range policies {
			cr := skirental.TraceCR(p, week)
			sums[name] += cr
			if best == "" || cr < bestCR {
				best, bestCR = name, cr
			}
		}
		if crProp := skirental.TraceCR(prop, week); crProp <= bestCR*(1+1e-12) {
			res.ProposedBest++
		}
	}
	for name, s := range sums {
		res.MeanCR[name] = s / float64(nDrivers)
	}
	null := dist.NewExponentialMean(stats.Mean(pooled))
	ks, err := stats.KSOneSample(pooled, null.CDF)
	if err != nil {
		return nil, "", err
	}
	res.KS = ks
	// Serial-correlation check on one long commute trace. Errand stops
	// are excluded: their rare multi-minute spikes dominate the variance
	// and mask the trip-level correlation the test targets.
	commute := plan
	commute.ErrandsPerDay = 0
	var oneDriver []float64
	for len(oneDriver) < 3000 {
		more, err := commute.Week(rng)
		if err != nil {
			return nil, "", err
		}
		oneDriver = append(oneDriver, more...)
	}
	lb, err := stats.LjungBox(oneDriver, 10)
	if err != nil {
		return nil, "", err
	}
	res.LjungBox = lb

	var sb strings.Builder
	sb.WriteString(header(fmt.Sprintf("Mechanistic drive-cycle study (B = %.0f s)", b)))
	sb.WriteString(fmt.Sprintf("%d drivers x 1 week of the urban commute plan: %d stops\n", nDrivers, res.Stops))
	sb.WriteString(fmt.Sprintf("KS vs fitted exponential: D = %.4f, p = %.2g (%s)\n\n",
		ks.D, ks.P, verdict(ks)))
	rows := [][]string{{"policy", "mean CR"}}
	for _, name := range []string{"TOI", "NEV", "DET", "N-Rand", "MOM-Rand", "Proposed"} {
		rows = append(rows, []string{name, fmt.Sprintf("%.3f", res.MeanCR[name])})
	}
	sb.WriteString(textplot.Table(rows))
	sb.WriteString(fmt.Sprintf("\nProposed (tied-)best for %d/%d drivers (%.0f%%).\n",
		res.ProposedBest, nDrivers, 100*float64(res.ProposedBest)/float64(nDrivers)))
	sb.WriteString(fmt.Sprintf("Ljung-Box on a long commute trace (errands excluded): p = %.2g — the\nper-trip traffic state serially correlates stops (not i.i.d.), unlike the\npaper's exchangeable-stop model; the worst-case CR guarantees still hold\nbecause they bound every stop individually.\n", res.LjungBox.P))
	sb.WriteString("Traffic here comes from signal phases, queue discharge and errand stops —\nno fitted distributions — and the Figure 4 ordering still holds.\n")
	return res, sb.String(), nil
}

func verdict(ks stats.KSResult) string {
	if ks.Rejects(0.01) {
		return "exponential rejected"
	}
	return "exponential not rejected"
}
