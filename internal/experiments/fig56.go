package experiments

import (
	"context"
	"fmt"
	"strings"

	"idlereduce/internal/analysis"
	"idlereduce/internal/fleet"
	"idlereduce/internal/textplot"
)

// SweepResult holds a Figure 5 or 6 traffic sweep.
type SweepResult struct {
	B      float64
	Points []analysis.SweepPoint
}

// Fig5 reproduces Figure 5: worst-case CR under different average stop
// lengths with B = 28 s. The stop-length shape is Chicago's (as in the
// paper), rescaled to each target mean.
func Fig5(o Options) (*SweepResult, string, error) {
	return Fig5Context(context.Background(), o)
}

// Fig5Context is Fig5 under a context: cancellable, and when ctx carries
// an obs.Recorder the sweep publishes its pool metrics.
func Fig5Context(ctx context.Context, o Options) (*SweepResult, string, error) {
	ssv, _ := BreakEvens()
	return figSweep(ctx, o, ssv, 5)
}

// Fig6 is Figure 6: the same sweep with B = 47 s.
func Fig6(o Options) (*SweepResult, string, error) {
	return Fig6Context(context.Background(), o)
}

// Fig6Context is Fig6 under a context (see Fig5Context).
func Fig6Context(ctx context.Context, o Options) (*SweepResult, string, error) {
	_, conv := BreakEvens()
	return figSweep(ctx, o, conv, 6)
}

func figSweep(ctx context.Context, o Options, b float64, figNo int) (*SweepResult, string, error) {
	o = o.withDefaults()
	shape := fleet.Chicago.StopLengthDistribution()
	means := analysis.SweepMeans(2, 600, o.SweepPoints)
	pts, err := analysis.TrafficSweepContext(ctx, b, shape, means, o.Workers)
	if err != nil {
		return nil, "", fmt.Errorf("experiments: fig%d: %w", figNo, err)
	}
	res := &SweepResult{B: b, Points: pts}

	chart := &textplot.LineChart{
		Title: fmt.Sprintf("Figure %d: worst-case CR vs average stop length (B = %.0f s, log x)",
			figNo, b),
		Width:  84,
		Height: 18,
		YMin:   1,
		YMax:   2.2,
		LogX:   true,
	}
	add := func(name string, pick func(analysis.SweepPoint) float64) {
		xs := make([]float64, 0, len(pts))
		ys := make([]float64, 0, len(pts))
		for _, p := range pts {
			xs = append(xs, p.MeanStopSec)
			ys = append(ys, pick(p))
		}
		chart.Add(textplot.Series{Name: name, X: xs, Y: ys})
	}
	for _, n := range []string{"DET", "TOI", "N-Rand", "MOM-Rand"} {
		name := n
		add(name, func(p analysis.SweepPoint) float64 { return p.Baselines[name] })
	}
	add("Proposed", func(p analysis.SweepPoint) float64 { return p.Proposed })

	var sb strings.Builder
	sb.WriteString(header(fmt.Sprintf("Figure %d: traffic sweep (B = %.0f s)", figNo, b)))
	sb.WriteString(chart.Render())
	sb.WriteString("\n")

	rows := [][]string{{"mean stop (s)", "mu_B-", "q_B+", "Proposed", "choice", "DET", "TOI", "N-Rand", "MOM-Rand"}}
	for i, p := range pts {
		if i%3 != 0 && i != len(pts)-1 {
			continue // thin the table
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.MeanStopSec),
			fmt.Sprintf("%.2f", p.Stats.MuBMinus),
			fmt.Sprintf("%.3f", p.Stats.QBPlus),
			fmt.Sprintf("%.4f", p.Proposed),
			p.Choice.String(),
			fmt.Sprintf("%.4f", p.Baselines["DET"]),
			fmt.Sprintf("%.4f", p.Baselines["TOI"]),
			fmt.Sprintf("%.4f", p.Baselines["N-Rand"]),
			fmt.Sprintf("%.4f", p.Baselines["MOM-Rand"]),
		})
	}
	sb.WriteString(textplot.Table(rows))
	sb.WriteString("\nThe proposed curve is the lower envelope: DET wins only in light traffic,\nTOI only in heavy traffic, and the randomized baselines are flat and dominated.\n")
	return res, sb.String(), nil
}
