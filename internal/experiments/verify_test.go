package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestVerifySuite(t *testing.T) {
	res, out, err := Verify(smallOpts(), 28)
	if err != nil {
		t.Fatal(err)
	}
	if res.ODEMaxErr > 1e-10 {
		t.Errorf("ODE error %v", res.ODEMaxErr)
	}
	if !res.VertexLPAgree {
		t.Error("vertex LP disagreed with enumeration")
	}
	if res.AdversaryMaxRelErr > 0.01 {
		t.Errorf("adversarial search error %v", res.AdversaryMaxRelErr)
	}
	if len(res.Minimax) != 4 {
		t.Fatalf("minimax checks %d", len(res.Minimax))
	}
	byRegion := map[string]MinimaxCheck{}
	for _, c := range res.Minimax {
		byRegion[c.Region] = c
	}
	// Tight in deterministic regions, strictly improvable in the
	// randomized ones — the reproduction finding.
	for _, r := range []string{"DET", "TOI"} {
		if byRegion[r].Improves {
			t.Errorf("%s region should be tight", r)
		}
	}
	for _, r := range []string{"b-DET", "N-Rand"} {
		if !byRegion[r].Improves {
			t.Errorf("%s region should show a strict improvement", r)
		}
	}
	for _, frag := range []string{"Verification suite", "improves?", "Finding"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

func TestDriveCycleExperiment(t *testing.T) {
	res, out, err := DriveCycle(smallOpts(), 28)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drivers != 25 || res.Stops == 0 {
		t.Errorf("drivers %d stops %d", res.Drivers, res.Stops)
	}
	if !res.KS.Rejects(0.01) {
		t.Errorf("mechanistic traffic should reject the exponential fit (p=%v)", res.KS.P)
	}
	if !res.LjungBox.Rejects(0.01) {
		t.Errorf("per-trip traffic state should show serial correlation (p=%v)", res.LjungBox.P)
	}
	frac := float64(res.ProposedBest) / float64(res.Drivers)
	if frac < 0.7 {
		t.Errorf("proposed best only %.0f%% on mechanistic traffic", frac*100)
	}
	// Proposed has the lowest mean CR of the lineup.
	for name, cr := range res.MeanCR {
		if name == "Proposed" {
			continue
		}
		if res.MeanCR["Proposed"] > cr+1e-9 {
			t.Errorf("proposed mean %v above %s %v", res.MeanCR["Proposed"], name, cr)
		}
	}
	if !strings.Contains(out, "drive-cycle study") {
		t.Error("missing header")
	}
}

func TestBSweepExperiment(t *testing.T) {
	res, out, err := BSweep(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 29 {
		t.Fatalf("points %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Proposed < 1-1e-9 || p.Proposed > math.E/(math.E-1)+1e-9 {
			t.Errorf("B=%v: proposed CR %v out of range", p.B, p.Proposed)
		}
		for name, cr := range p.Baselines {
			if name == "b-DET" {
				continue // +Inf when inapplicable
			}
			if p.Proposed > cr+1e-9 {
				t.Errorf("B=%v: proposed above %s", p.B, name)
			}
		}
	}
	// q_B+ decreases as B grows (fewer stops exceed a longer break-even).
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Stats.QBPlus > res.Points[i-1].Stats.QBPlus+1e-9 {
			t.Errorf("q_B+ increased from B=%v to B=%v", res.Points[i-1].B, res.Points[i].B)
		}
	}
	if !strings.Contains(out, "Break-even sensitivity") {
		t.Error("missing header")
	}
}

func TestFleetSavingsExperiment(t *testing.T) {
	f := smallFleet(t)
	res, out, err := FleetSavings(smallOpts(), f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Vehicles != 75 || len(res.Policies) != 3 {
		t.Fatalf("vehicles %d policies %d", res.Vehicles, len(res.Policies))
	}
	byName := map[string]SavingsPolicy{}
	for _, p := range res.Policies {
		byName[p.Policy] = p
	}
	// TOI saves the most idle time but restarts the most; the proposed
	// policy nets at least as many dollars as DET and TOI (it optimizes
	// the tradeoff).
	if byName["TOI"].PerVehicle.IdleSecondsSaved < byName["Proposed"].PerVehicle.IdleSecondsSaved {
		t.Error("TOI should save the most idling time")
	}
	if byName["TOI"].PerVehicle.Restarts < byName["Proposed"].PerVehicle.Restarts {
		t.Error("TOI should restart the most")
	}
	for _, p := range res.Policies {
		if p.PerVehicle.USD <= 0 {
			t.Errorf("%s: negative annual saving %v on an SSV", p.Policy, p.PerVehicle.USD)
		}
	}
	if !strings.Contains(out, "Annualized savings") {
		t.Error("missing header")
	}
}

func TestMultislopeExperiment(t *testing.T) {
	f := smallFleet(t)
	res, out, err := Multislope(smallOpts(), f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Vehicles != 75 || len(res.MeanCR) != 5 {
		t.Fatalf("vehicles %d bundles %d", res.Vehicles, len(res.MeanCR))
	}
	// The extra state can only lower realized cost for the proposed
	// bundle (its segments include the classic split as a special case).
	if res.MeanCostUnits["3-state Proposed"] > res.MeanCostUnits["2-state Proposed"]+1e-9 {
		t.Errorf("three-state cost %v above two-state %v",
			res.MeanCostUnits["3-state Proposed"], res.MeanCostUnits["2-state Proposed"])
	}
	if res.FuelCutShare <= 0 || res.FuelCutShare >= 1 {
		t.Errorf("fuel-cut share %v", res.FuelCutShare)
	}
	if !strings.Contains(out, "Multislope extension") {
		t.Error("missing header")
	}
}
