package experiments

import (
	"math"
	"strings"
	"testing"

	"idlereduce/internal/fleet"
	"idlereduce/internal/skirental"
)

// smallOpts keeps unit-test runtimes reasonable.
func smallOpts() Options {
	return Options{Seed: 7, FleetVehicles: 25, GridN: 24, SweepPoints: 12}
}

func smallFleet(t *testing.T) *fleet.Fleet {
	t.Helper()
	f, err := smallOpts().BuildFleet()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	d := Defaults()
	if o.Seed != d.Seed || o.GridN != d.GridN || o.SweepPoints != d.SweepPoints {
		t.Errorf("defaults not applied: %+v", o)
	}
	// Explicit values survive.
	o2 := Options{Seed: 1, GridN: 5, SweepPoints: 3}.withDefaults()
	if o2.Seed != 1 || o2.GridN != 5 || o2.SweepPoints != 3 {
		t.Errorf("explicit values clobbered: %+v", o2)
	}
}

func TestBuildFleetScaled(t *testing.T) {
	f := smallFleet(t)
	if len(f.Vehicles) != 3*25 {
		t.Errorf("vehicles %d", len(f.Vehicles))
	}
}

func TestBreakEvens(t *testing.T) {
	ssv, conv := BreakEvens()
	if ssv != 28 || conv != 47 {
		t.Errorf("break-evens %v %v", ssv, conv)
	}
}

func TestFig1(t *testing.T) {
	res, out := Fig1(smallOpts(), 28)
	if res.MaxCR > math.E/(math.E-1)+1e-9 || res.MaxCR < 1.2 {
		t.Errorf("max CR %v implausible", res.MaxCR)
	}
	// All four strategies must appear with nonzero share.
	for _, ch := range []skirental.Choice{skirental.ChoiceDET, skirental.ChoiceTOI, skirental.ChoiceBDet, skirental.ChoiceNRand} {
		if res.Share[ch] <= 0 {
			t.Errorf("strategy %v has zero share", ch)
		}
	}
	shareSum := 0.0
	for _, s := range res.Share {
		shareSum += s
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Errorf("shares sum to %v", shareSum)
	}
	for _, frag := range []string{"Figure 1a", "DET", "TOI", "b-DET", "N-Rand", "infeasible"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

func TestFig2(t *testing.T) {
	results, out := Fig2(smallOpts(), 28)
	if len(results) != 3 {
		t.Fatalf("slices %d", len(results))
	}
	for _, r := range results {
		if len(r.Points) == 0 {
			t.Fatalf("muFrac %v: no points", r.MuFrac)
		}
		for _, p := range r.Points {
			if p.Proposed > p.Baselines["N-Rand"]+1e-9 {
				t.Errorf("proposed above N-Rand at q=%v", p.Q)
			}
		}
	}
	if !strings.Contains(out, "mu_B- = 0.02B") {
		t.Error("missing 0.02B slice header")
	}
}

func TestFig3(t *testing.T) {
	f := smallFleet(t)
	results, out, err := Fig3(smallOpts(), f)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("areas %d", len(results))
	}
	for _, r := range results {
		if !r.KS.Rejects(0.01) {
			t.Errorf("%s: exponential not rejected (p=%v)", r.Area, r.KS.P)
		}
		if r.Stops == 0 || r.Vehicles != 25 {
			t.Errorf("%s: stops=%d vehicles=%d", r.Area, r.Stops, r.Vehicles)
		}
	}
	if !strings.Contains(out, "rejected") {
		t.Error("report missing KS verdict")
	}
	// The cross-area shape comparison and its substitution note.
	for _, frag := range []string{"Cross-area shape", "California vs Atlanta", "Substitution note"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

func TestFig4(t *testing.T) {
	f := smallFleet(t)
	results, out, err := Fig4(smallOpts(), f)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("panels %d", len(results))
	}
	if results[0].B != 28 || results[1].B != 47 {
		t.Errorf("Bs %v %v", results[0].B, results[1].B)
	}
	for _, r := range results {
		frac := float64(r.Eval.ProposedBestTotal) / float64(len(r.Eval.Vehicles))
		if frac < 0.6 {
			t.Errorf("B=%v: proposed best only %.0f%%", r.B, frac*100)
		}
		for _, a := range r.Eval.Areas {
			// Proposed must have the lowest worst-case CR per area.
			for _, p := range []string{"TOI", "NEV", "DET", "N-Rand", "MOM-Rand"} {
				if a.WorstCR["Proposed"] > a.WorstCR[p]+1e-9 {
					t.Errorf("B=%v %s: proposed worst %v above %s %v", r.B, a.Area, a.WorstCR["Proposed"], p, a.WorstCR[p])
				}
			}
		}
	}
	for _, frag := range []string{"B = 28 s (SSV)", "B = 47 s (no-SSS)", "Vertex selection"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

func TestFig5AndFig6(t *testing.T) {
	for _, fig := range []func(Options) (*SweepResult, string, error){Fig5, Fig6} {
		res, out, err := fig(smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Points) != 12 {
			t.Fatalf("points %d", len(res.Points))
		}
		for _, p := range res.Points {
			if p.Proposed > p.Baselines["N-Rand"]+1e-9 {
				t.Errorf("B=%v mean=%v: proposed above N-Rand", res.B, p.MeanStopSec)
			}
		}
		// Crossover shape: DET best early, TOI best late.
		first, last := res.Points[0], res.Points[len(res.Points)-1]
		if first.Baselines["DET"] > first.Baselines["TOI"] {
			t.Errorf("B=%v: DET should win at short stops", res.B)
		}
		if last.Baselines["TOI"] > last.Baselines["DET"] {
			t.Errorf("B=%v: TOI should win at long stops", res.B)
		}
		if !strings.Contains(out, "lower envelope") {
			t.Error("report missing narrative")
		}
	}
}

func TestTable1(t *testing.T) {
	f := smallFleet(t)
	rows, out, err := Table1(smallOpts(), f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	targets := map[string]float64{"California": 9.37, "Chicago": 12.49, "Atlanta": 10.37}
	for _, r := range rows {
		if math.Abs(r.Mean-targets[r.Area]) > 0.35*targets[r.Area] {
			t.Errorf("%s: mean stops/day %v vs target %v", r.Area, r.Mean, targets[r.Area])
		}
		if r.PWithin < 0.85 || r.PWithin > 1 {
			t.Errorf("%s: P within %v", r.Area, r.PWithin)
		}
	}
	if !strings.Contains(out, "Table 1") {
		t.Error("missing header")
	}
}

func TestAppendixC(t *testing.T) {
	res, out, err := AppendixC(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.IdlingCentsPerSec-0.0258) > 0.0002 {
		t.Errorf("idling cost %v", res.IdlingCentsPerSec)
	}
	if res.SSV.TotalSec() < 28 || res.SSV.TotalSec() > 30 {
		t.Errorf("SSV B %v", res.SSV.TotalSec())
	}
	if res.Conventional.TotalSec() < 47 || res.Conventional.TotalSec() > 49.5 {
		t.Errorf("conventional B %v", res.Conventional.TotalSec())
	}
	for _, frag := range []string{"starter wear", "battery wear", "total B"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}
