package experiments

import (
	"testing"
)

// withWorkers returns small-size options pinned to one worker count.
func withWorkers(seed uint64, workers int) Options {
	return Options{
		Seed:          seed,
		FleetVehicles: 6,
		GridN:         12,
		SweepPoints:   8,
		Workers:       workers,
	}
}

// TestFiguresDeterministicAcrossWorkers renders every parallelized figure
// serially and with an 8-worker pool and requires byte-identical report
// text — the end-to-end statement of the engine's determinism contract.
func TestFiguresDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{1, 20140601, 424242} {
		serial := withWorkers(seed, 1)
		wide := withWorkers(seed, 8)

		fleetSerial, err := serial.BuildFleet()
		if err != nil {
			t.Fatal(err)
		}
		fleetWide, err := wide.BuildFleet()
		if err != nil {
			t.Fatal(err)
		}

		ssv, _ := BreakEvens()
		_, f1a := Fig1(serial, ssv)
		_, f1b := Fig1(wide, ssv)
		if f1a != f1b {
			t.Errorf("seed %d: Fig1 text differs between workers 1 and 8", seed)
		}

		_, f2a := Fig2(serial, ssv)
		_, f2b := Fig2(wide, ssv)
		if f2a != f2b {
			t.Errorf("seed %d: Fig2 text differs between workers 1 and 8", seed)
		}

		_, f4a, err := Fig4(serial, fleetSerial)
		if err != nil {
			t.Fatal(err)
		}
		_, f4b, err := Fig4(wide, fleetWide)
		if err != nil {
			t.Fatal(err)
		}
		if f4a != f4b {
			t.Errorf("seed %d: Fig4 text differs between workers 1 and 8", seed)
		}

		_, f5a, err := Fig5(serial)
		if err != nil {
			t.Fatal(err)
		}
		_, f5b, err := Fig5(wide)
		if err != nil {
			t.Fatal(err)
		}
		if f5a != f5b {
			t.Errorf("seed %d: Fig5 text differs between workers 1 and 8", seed)
		}

		_, bsa, err := BSweep(serial)
		if err != nil {
			t.Fatal(err)
		}
		_, bsb, err := BSweep(wide)
		if err != nil {
			t.Fatal(err)
		}
		if bsa != bsb {
			t.Errorf("seed %d: BSweep text differs between workers 1 and 8", seed)
		}
	}
}
