package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestAblations(t *testing.T) {
	f := smallFleet(t)
	res, out, err := Ablations(smallOpts(), f)
	if err != nil {
		t.Fatal(err)
	}
	// b-DET removal can only hurt (the full selector minimizes).
	if res.BDetOffMeanCR < res.BDetFullMeanCR-1e-12 {
		t.Errorf("removing b-DET improved the mean CR: %v vs %v", res.BDetOffMeanCR, res.BDetFullMeanCR)
	}
	if res.BDetMaxGain <= 0 {
		t.Errorf("b-DET should help somewhere, max gain %v", res.BDetMaxGain)
	}
	// Estimation penalties are small and non-negative in aggregate.
	if pen := res.EstTrainedMeanCR - res.EstExactMeanCR; pen < -0.02 || pen > 0.15 {
		t.Errorf("implausible estimation penalty %v", pen)
	}
	if pen := res.AdaptiveMeanCR - res.StaticMeanCR; pen < -0.02 || pen > 0.25 {
		t.Errorf("implausible adaptation penalty %v", pen)
	}
	// The mismatch case must hurt AVG more than the matched case.
	mismatchGap := res.AvgMismatchMeanCR - res.ProposedMismatchMeanCR
	matchedGap := res.AvgMeanCR - res.ProposedMeanCR
	if mismatchGap <= matchedGap {
		t.Errorf("mismatch gap %v should exceed matched gap %v", mismatchGap, matchedGap)
	}
	// The robust selector is more conservative than the plain one on
	// small samples: higher average CR but a guaranteed bound.
	if res.RobustSmallSampleMeanCR < res.PlainSmallSampleMeanCR-0.02 {
		t.Errorf("robust %v should not beat plain %v on average", res.RobustSmallSampleMeanCR, res.PlainSmallSampleMeanCR)
	}
	if res.RobustSmallSampleMeanCR > math.E/(math.E-1)+0.02 {
		t.Errorf("robust mean CR %v above the N-Rand ceiling", res.RobustSmallSampleMeanCR)
	}
	// LP-OPT ties the proposed policy on realized fleet CR (most
	// vehicles are in the DET region where the two coincide).
	if math.Abs(res.LPOptMeanCR-res.ProposedLPSampleMeanCR) > 0.02 {
		t.Errorf("LP-OPT %v vs proposed %v: unexpected realized gap", res.LPOptMeanCR, res.ProposedLPSampleMeanCR)
	}
	for _, frag := range []string{"b-DET vertex", "trained statistics", "AVG", "LP-OPT", "adaptive"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
	for _, v := range []float64{res.BDetFullMeanCR, res.EstExactMeanCR, res.AvgMeanCR, res.AdaptiveMeanCR} {
		if math.IsNaN(v) || v < 1 {
			t.Errorf("implausible metric %v", v)
		}
	}
}
