package experiments

import (
	"fmt"
	"strings"

	"idlereduce/internal/fleet"
	"idlereduce/internal/multislope"
	"idlereduce/internal/simulator"
	"idlereduce/internal/stats"
	"idlereduce/internal/textplot"
)

// MultislopeResult compares the two-state (paper) setting with the
// three-state fuel-cut powertrain on the same fleet.
type MultislopeResult struct {
	Vehicles int
	// MeanCR maps bundle name to mean realized CR over vehicles.
	// Two-state and three-state CRs are each measured against their own
	// offline optimum, so compare costs (below), not CRs, across ladders.
	MeanCR map[string]float64
	// MeanCostUnits maps bundle name to the mean per-vehicle weekly cost
	// in seconds-of-idling equivalents — directly comparable across
	// ladders.
	MeanCostUnits map[string]float64
	// FuelCutShare is the fraction of stopped time the three-state
	// proposed bundle spends in the fuel-cut state.
	FuelCutShare float64
}

// Multislope runs the rent-lease-buy extension on the fleet: does an
// intermediate fuel-cut state reduce real costs, and by how much? (The
// paper scopes HEV strategies out; this is the natural first step.)
func Multislope(o Options, f *fleet.Fleet) (*MultislopeResult, string, error) {
	o = o.withDefaults()
	const b = 28.0
	three, err := multislope.AutomotiveThreeState(b)
	if err != nil {
		return nil, "", err
	}
	two, err := multislope.NewProblem([]multislope.Slope{{Buy: 0, Rate: 1}, {Buy: b, Rate: 0}})
	if err != nil {
		return nil, "", err
	}

	res := &MultislopeResult{
		Vehicles:      len(f.Vehicles),
		MeanCR:        map[string]float64{},
		MeanCostUnits: map[string]float64{},
	}
	sumsCR := map[string]float64{}
	sumsCost := map[string]float64{}
	var fuelCutTime, stoppedTime float64
	for _, v := range f.Vehicles {
		bundles := map[string]*multislope.Policy{
			"2-state DET":  multislope.NewDeterministic(two),
			"3-state DET":  multislope.NewDeterministic(three),
			"3-state Rand": multislope.NewRandomized(three),
		}
		cons3, err := multislope.NewConstrained(three, v.Stops)
		if err != nil {
			return nil, "", err
		}
		bundles["3-state Proposed"] = cons3
		cons2, err := multislope.NewConstrained(two, v.Stops)
		if err != nil {
			return nil, "", err
		}
		bundles["2-state Proposed"] = cons2

		for name, pol := range bundles {
			sumsCR[name] += pol.TraceCR(v.Stops)
			var cost float64
			for _, y := range v.Stops {
				cost += pol.MeanCostForStop(y)
			}
			sumsCost[name] += cost
		}

		// Physical trajectory of the three-state proposed bundle.
		run, err := simulator.RunMultiState(simulator.MultiStateConfig{
			Policy:           cons3,
			CentsPerCostUnit: 1,
		}, v.Stops, stats.NewRNG(o.Seed^uint64(len(v.Stops))))
		if err != nil {
			return nil, "", err
		}
		fuelCutTime += run.TimeInState[1]
		for _, y := range v.Stops {
			stoppedTime += y
		}
	}
	n := float64(len(f.Vehicles))
	for name := range sumsCR {
		res.MeanCR[name] = sumsCR[name] / n
		res.MeanCostUnits[name] = sumsCost[name] / n
	}
	if stoppedTime > 0 {
		res.FuelCutShare = fuelCutTime / stoppedTime
	}

	var sb strings.Builder
	sb.WriteString(header("Multislope extension: fuel-cut intermediate state (B = 28 s)"))
	rows := [][]string{{"bundle", "mean weekly cost (idle-s)", "mean CR vs own offline"}}
	for _, name := range []string{"2-state DET", "2-state Proposed", "3-state DET", "3-state Rand", "3-state Proposed"} {
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.0f", res.MeanCostUnits[name]),
			fmt.Sprintf("%.3f", res.MeanCR[name]),
		})
	}
	sb.WriteString(textplot.Table(rows))
	sb.WriteString(fmt.Sprintf("\nThe three-state proposed bundle cuts weekly cost by %.1f%% relative to the\n",
		100*(1-res.MeanCostUnits["3-state Proposed"]/res.MeanCostUnits["2-state Proposed"])))
	sb.WriteString(fmt.Sprintf("paper's two-state setting, spending %.0f%% of stopped time in the fuel-cut\n", res.FuelCutShare*100))
	sb.WriteString("state. The paper scopes HEV strategies out; this quantifies the first rung.\n")
	return res, sb.String(), nil
}
