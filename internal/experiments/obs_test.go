package experiments

import (
	"context"
	"errors"
	"testing"

	"idlereduce/internal/obs"
)

func TestTimedRecordsWallAndAllocations(t *testing.T) {
	rec := obs.NewRecorder("exp", nil, nil)
	ctx := obs.WithRecorder(context.Background(), rec)
	err := Timed(ctx, "fig1", func() error {
		// Allocate something measurable.
		buf := make([][]byte, 64)
		for i := range buf {
			buf[i] = make([]byte, 4096)
		}
		_ = buf
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := rec.Registry()
	if got := reg.Gauge(obs.L("experiment_alloc_bytes", "name", "fig1")).Value(); got < 64*4096 {
		t.Errorf("alloc bytes %v want >= %d", got, 64*4096)
	}
	if got := reg.Gauge(obs.L("experiment_wall_ms", "name", "fig1")).Value(); got < 0 {
		t.Errorf("wall ms %v", got)
	}
	if got := reg.Counter("experiment_runs_total").Value(); got != 1 {
		t.Errorf("runs counter %d", got)
	}
}

func TestTimedPropagatesErrorAndNoopWithoutRecorder(t *testing.T) {
	sentinel := errors.New("boom")
	if err := Timed(context.Background(), "x", func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("error not propagated: %v", err)
	}
	rec := obs.NewRecorder("exp", nil, nil)
	ctx := obs.WithRecorder(context.Background(), rec)
	if err := Timed(ctx, "y", func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("error not propagated with recorder: %v", err)
	}
}

func TestBuildFleetContextMatchesBuildFleet(t *testing.T) {
	opts := Options{Seed: 7, FleetVehicles: 3}
	a, err := opts.BuildFleet()
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder("exp", nil, nil)
	b, err := opts.BuildFleetContext(obs.WithRecorder(context.Background(), rec))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Vehicles) != len(b.Vehicles) {
		t.Fatal("fleet sizes diverge under instrumentation")
	}
	if rec.Registry().Counter(obs.L("fleet_vehicles_total", "area", "Chicago")).Value() != 3 {
		t.Error("per-area vehicle counter missing")
	}
}
