package simulator

import (
	"math"
	"testing"

	"idlereduce/internal/skirental"
)

// TestEventLogConsistentWithOutcomes replays a run with RecordEvents
// and checks, stop by stop, that the event log tells the same story as
// the StopOutcome fields: an idle → engine-off → restart sequence for
// shut-off stops (with the engine-off timestamp exactly Threshold
// seconds into the stop), an idle → drive-on sequence otherwise, and
// globally monotone timestamps.
func TestEventLogConsistentWithOutcomes(t *testing.T) {
	const gap = 45.0
	// DET at B=28: 5 and 20 stay idling, 28 and 200 shut off (y >= x).
	stops := []float64{5, 28, 200, 20}
	res, err := Run(Config{
		Costs:        testCosts,
		Policy:       skirental.NewDET(28),
		DriveGapSec:  gap,
		RecordEvents: true,
	}, stops, simRNG())
	if err != nil {
		t.Fatal(err)
	}

	// Group events by stop index.
	byStop := make(map[int][]*Event)
	prevT := math.Inf(-1)
	for _, e := range res.Events {
		if e.T < prevT {
			t.Fatalf("timestamps not monotone: %v after %v", e.T, prevT)
		}
		prevT = e.T
		byStop[e.Stop] = append(byStop[e.Stop], e)
	}

	clock := 0.0
	for i, out := range res.Stops {
		clock += gap // driving gap precedes each stop
		evs := byStop[i]
		if len(evs) == 0 {
			t.Fatalf("stop %d: no events", i)
		}
		if evs[0].Kind != EvStop {
			t.Errorf("stop %d: first event %v want %v", i, evs[0].Kind, EvStop)
		}
		if math.Abs(evs[0].T-clock) > 1e-9 {
			t.Errorf("stop %d: stop event at %v want %v", i, evs[0].T, clock)
		}
		if out.EngineOff {
			// idle → off → restart: off at Threshold seconds into the
			// stop (== IdleSec), restart when the stop ends.
			if len(evs) != 3 || evs[1].Kind != EvEngineOff || evs[2].Kind != EvRestart {
				t.Fatalf("stop %d: events %v want [stop engine-off restart]", i, kinds(evs))
			}
			if math.Abs(out.IdleSec-out.Threshold) > 1e-9 {
				t.Errorf("stop %d: idle %v != threshold %v", i, out.IdleSec, out.Threshold)
			}
			if math.Abs(evs[1].T-(clock+out.Threshold)) > 1e-9 {
				t.Errorf("stop %d: engine-off at %v want %v", i, evs[1].T, clock+out.Threshold)
			}
			if math.Abs(evs[2].T-(clock+out.Length)) > 1e-9 {
				t.Errorf("stop %d: restart at %v want %v", i, evs[2].T, clock+out.Length)
			}
		} else {
			// idle → drive-on: the whole stop is spent idling.
			if len(evs) != 2 || evs[1].Kind != EvDriveOn {
				t.Fatalf("stop %d: events %v want [stop drive-on]", i, kinds(evs))
			}
			if math.Abs(out.IdleSec-out.Length) > 1e-9 {
				t.Errorf("stop %d: idle %v != length %v", i, out.IdleSec, out.Length)
			}
			if math.Abs(evs[1].T-(clock+out.Length)) > 1e-9 {
				t.Errorf("stop %d: drive-on at %v want %v", i, evs[1].T, clock+out.Length)
			}
		}
		clock += out.Length
	}
	if math.Abs(res.DurationSec-clock) > 1e-9 {
		t.Errorf("duration %v want %v", res.DurationSec, clock)
	}
}

func kinds(evs []*Event) []EventKind {
	out := make([]EventKind, len(evs))
	for i, e := range evs {
		out[i] = e.Kind
	}
	return out
}
