// Package simulator provides an event-driven vehicle simulator that
// executes idling policies on concrete drive cycles and accounts costs in
// real monetary units.
//
// The skirental package reasons in break-even-normalized units (idling
// costs 1 per second, a restart costs B). The simulator closes the loop
// back to the physical model of Section 2 and Appendix C: an engine state
// machine (Driving / Idling / EngineOff) driven by a stop sequence, a
// policy that decides when to shut the engine off, and a cost meter in
// cents using a costmodel.CostRatio. Dividing the metered costs by the
// idling rate recovers exactly the abstract ski-rental costs, which the
// tests assert.
package simulator

import (
	"errors"
	"fmt"
)

// State is the engine state.
type State int

// Engine states.
const (
	// Driving: the vehicle is moving, engine on.
	Driving State = iota
	// Idling: the vehicle is stopped with the engine running.
	Idling
	// EngineOff: the vehicle is stopped with the engine shut off.
	EngineOff
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Driving:
		return "driving"
	case Idling:
		return "idling"
	case EngineOff:
		return "engine-off"
	default:
		return fmt.Sprintf("simulator.State(%d)", int(s))
	}
}

// EventKind labels a state transition in the event log.
type EventKind int

// Event kinds.
const (
	// EvStop: the vehicle came to a stop (engine begins idling).
	EvStop EventKind = iota
	// EvEngineOff: the policy shut the engine off.
	EvEngineOff
	// EvRestart: the driver moved off and the engine restarted.
	EvRestart
	// EvDriveOn: the driver moved off with the engine still idling.
	EvDriveOn
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvStop:
		return "stop"
	case EvEngineOff:
		return "engine-off"
	case EvRestart:
		return "restart"
	case EvDriveOn:
		return "drive-on"
	default:
		return fmt.Sprintf("simulator.EventKind(%d)", int(k))
	}
}

// Event is one entry of the simulation event log.
type Event struct {
	// T is the simulation clock in seconds.
	T float64
	// Kind is the transition.
	Kind EventKind
	// Stop is the index of the stop this event belongs to.
	Stop int
}

// ErrBadTransition reports a state-machine violation; it indicates a bug
// in the caller or the engine itself and is surfaced rather than panicked
// so fuzzing can exercise it.
var ErrBadTransition = errors.New("simulator: invalid engine transition")

// engine is the state machine with invariant checking.
type engine struct {
	state  State
	clock  float64
	events []*Event
	record bool
	stop   int
}

func (e *engine) logEvent(k EventKind) {
	if e.record {
		e.events = append(e.events, &Event{T: e.clock, Kind: k, Stop: e.stop})
	}
}

// beginStop transitions Driving -> Idling.
func (e *engine) beginStop() error {
	if e.state != Driving {
		return fmt.Errorf("%w: beginStop from %v", ErrBadTransition, e.state)
	}
	e.state = Idling
	e.logEvent(EvStop)
	return nil
}

// shutOff transitions Idling -> EngineOff.
func (e *engine) shutOff() error {
	if e.state != Idling {
		return fmt.Errorf("%w: shutOff from %v", ErrBadTransition, e.state)
	}
	e.state = EngineOff
	e.logEvent(EvEngineOff)
	return nil
}

// driveOn leaves the stop: Idling -> Driving (no restart) or
// EngineOff -> Driving (restart).
func (e *engine) driveOn() (restarted bool, err error) {
	switch e.state {
	case Idling:
		e.state = Driving
		e.logEvent(EvDriveOn)
		return false, nil
	case EngineOff:
		e.state = Driving
		e.logEvent(EvRestart)
		return true, nil
	default:
		return false, fmt.Errorf("%w: driveOn from %v", ErrBadTransition, e.state)
	}
}
