package simulator

import (
	"context"
	"math"
	"testing"

	"idlereduce/internal/obs"
	"idlereduce/internal/skirental"
)

// TestRunContextPublishesMetrics checks that the per-stop metrics of an
// instrumented run agree exactly with the returned Result.
func TestRunContextPublishesMetrics(t *testing.T) {
	rec := obs.NewRecorder("test", nil, nil)
	ctx := obs.WithRecorder(context.Background(), rec)
	stops := []float64{10, 30, 5} // DET at B=28: only the 30 s stop shuts off
	res, err := RunContext(ctx, Config{Costs: testCosts, Policy: skirental.NewDET(28)}, stops, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	reg := rec.Registry()
	if got := reg.Counter("sim_stops_total").Value(); got != int64(len(stops)) {
		t.Errorf("sim_stops_total %d want %d", got, len(stops))
	}
	if got := reg.Counter("sim_engine_off_total").Value(); got != int64(res.Restarts) {
		t.Errorf("sim_engine_off_total %d want %d", got, res.Restarts)
	}
	if got := reg.Counter("sim_drive_on_idling_total").Value(); got != int64(len(stops)-res.Restarts) {
		t.Errorf("sim_drive_on_idling_total %d", got)
	}
	online := reg.Histogram("sim_online_cents")
	if online.Count() != uint64(len(stops)) {
		t.Errorf("online histogram count %d", online.Count())
	}
	if math.Abs(online.Sum()-res.OnlineCents) > 1e-9 {
		t.Errorf("online histogram sum %v want %v", online.Sum(), res.OnlineCents)
	}
	if math.Abs(reg.Histogram("sim_offline_cents").Sum()-res.OfflineCents) > 1e-9 {
		t.Errorf("offline histogram sum mismatch")
	}
	// Transition counters mirror the state machine: every stop begins one
	// idling phase; shut-offs pair with restarts.
	for kind, want := range map[string]int64{
		EvStop.String():      int64(len(stops)),
		EvEngineOff.String(): int64(res.Restarts),
		EvRestart.String():   int64(res.Restarts),
		EvDriveOn.String():   int64(len(stops) - res.Restarts),
	} {
		if got := reg.Counter(obs.L("sim_transition_total", "kind", kind)).Value(); got != want {
			t.Errorf("sim_transition_total{kind=%q} = %d want %d", kind, got, want)
		}
	}
	if got := reg.Gauge("sim_last_run_cr").Value(); math.Abs(got-res.CR()) > 1e-12 {
		t.Errorf("sim_last_run_cr %v want %v", got, res.CR())
	}
	if reg.Histogram(obs.L("span_ms", "span", "simulator.run")).Count() != 1 {
		t.Error("simulator.run span not recorded")
	}
}

// TestRunContextWithoutRecorder pins the no-op contract: a bare context
// must leave no trace and produce identical results to Run.
func TestRunContextWithoutRecorder(t *testing.T) {
	stops := []float64{10, 30, 5}
	res1, err := RunContext(context.Background(), Config{Costs: testCosts, Policy: skirental.NewDET(28)}, stops, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(Config{Costs: testCosts, Policy: skirental.NewDET(28)}, stops, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	if res1.OnlineCents != res2.OnlineCents || res1.Restarts != res2.Restarts {
		t.Errorf("instrumented-off run diverged: %+v vs %+v", res1, res2)
	}
}
