package simulator

import (
	"fmt"
	"math/rand/v2"

	"idlereduce/internal/predict"
	"idlereduce/internal/skirental"
)

// AdvisedPolicy is a policy that can consume a per-stop prediction:
// the learning-augmented wrappers (predict.SoftML, predict.DistAdvice)
// implement it on top of the constrained fallback.
type AdvisedPolicy interface {
	skirental.Policy
	// Advise draws this stop's threshold given a forecast. The fallback
	// draw is consumed unconditionally so the RNG stream position is
	// independent of the forecast's content.
	Advise(rng *rand.Rand, p predict.Prediction) predict.Advice
}

// AdvisedConfig parameterizes an advised run: a predictor model emits
// one forecast per stop and the advised policy blends it against its
// fallback.
type AdvisedConfig struct {
	Config
	// Advised is the prediction-consuming policy. It must also be the
	// run's Config.Policy; RunAdvised fills that field itself.
	Advised AdvisedPolicy
	// Predictor emits the per-stop forecast; see predict.Oracle,
	// predict.Miscalibrated, predict.Stale, predict.Biased,
	// predict.Adversarial.
	Predictor predict.Predictor
}

// advisedAdapter threads per-stop forecasts through the simulator's
// one-Threshold-per-stop contract: each Threshold call predicts the
// upcoming stop, asks the policy for advice, and plays the advised
// threshold. It is single-use — one adapter per run.
type advisedAdapter struct {
	policy    AdvisedPolicy
	predictor predict.Predictor
	stops     []float64
	next      int
	prev      float64
}

func (a *advisedAdapter) Name() string {
	return fmt.Sprintf("%s+%s", a.policy.Name(), a.predictor.Name())
}

func (a *advisedAdapter) B() float64 { return a.policy.B() }

func (a *advisedAdapter) MeanCostForStop(y float64) float64 { return a.policy.MeanCostForStop(y) }

func (a *advisedAdapter) Threshold(rng *rand.Rand) float64 {
	if a.next >= len(a.stops) {
		// Defensive: the simulator calls Threshold exactly once per
		// stop; past the trace the policy degrades to its fallback.
		return a.policy.Threshold(rng)
	}
	actual := a.stops[a.next]
	forecast := a.predictor.Predict(rng, actual, a.prev)
	adv := a.policy.Advise(rng, forecast)
	a.prev = actual
	a.next++
	return adv.Threshold
}

// RunAdvised simulates an advised policy over the stop sequence: the
// predictor sees each stop's true length (and the previous one) and
// the policy blends the forecast against its fallback draw. Everything
// else — engine state machine, cost metering, observability — is the
// plain Run path.
func RunAdvised(cfg AdvisedConfig, stops []float64, rng *rand.Rand) (*Result, error) {
	if cfg.Advised == nil {
		return nil, fmt.Errorf("%w: nil advised policy", ErrConfig)
	}
	if cfg.Predictor == nil {
		return nil, fmt.Errorf("%w: nil predictor", ErrConfig)
	}
	run := cfg.Config
	run.Policy = &advisedAdapter{policy: cfg.Advised, predictor: cfg.Predictor, stops: stops}
	return Run(run, stops, rng)
}
