package simulator

import (
	"math"
	"math/rand/v2"
	"testing"

	"idlereduce/internal/predict"
	"idlereduce/internal/skirental"
)

// testStats is an N-Rand-selecting pair at B=28, so advised runs
// exercise randomized fallback draws.
var testStats = skirental.Stats{MuBMinus: 4, QBPlus: 0.25}

func mustSoftML(t *testing.T, lambda float64) *predict.SoftML {
	t.Helper()
	c, err := skirental.NewConstrained(28, testStats)
	if err != nil {
		t.Fatal(err)
	}
	p, err := predict.NewSoftML(c, lambda)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// testTrace is a deterministic stop mix straddling B=28: short stops,
// long stops, and boundary lengths.
func testTrace(n int) []float64 {
	rng := rand.New(rand.NewPCG(99, 7))
	stops := make([]float64, n)
	for i := range stops {
		stops[i] = 1 + rng.Float64()*120
	}
	return stops
}

// TestRunAdvisedZeroLambdaMatchesFallback: at lambda = 0 an advised
// run is the plain constrained run, stop for stop — same thresholds,
// same costs — regardless of the predictor feeding it. The predictor
// here consumes no randomness, so the RNG streams stay aligned.
func TestRunAdvisedZeroLambdaMatchesFallback(t *testing.T) {
	stops := testTrace(500)
	pol := mustSoftML(t, 0)
	want, err := Run(Config{Costs: testCosts, Policy: pol.Fallback()}, stops, rand.New(rand.NewPCG(5, 6)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunAdvised(AdvisedConfig{
		Config:    Config{Costs: testCosts},
		Advised:   pol,
		Predictor: predict.Adversarial{B: 28},
	}, stops, rand.New(rand.NewPCG(5, 6)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Stops) != len(want.Stops) {
		t.Fatalf("stop counts %d != %d", len(got.Stops), len(want.Stops))
	}
	for i := range got.Stops {
		if math.Float64bits(got.Stops[i].Threshold) != math.Float64bits(want.Stops[i].Threshold) {
			t.Fatalf("stop %d threshold %v != fallback %v", i, got.Stops[i].Threshold, want.Stops[i].Threshold)
		}
	}
	if got.OnlineCents != want.OnlineCents || got.OfflineCents != want.OfflineCents {
		t.Errorf("advised lambda=0 costs (%v, %v) != fallback (%v, %v)",
			got.OnlineCents, got.OfflineCents, want.OnlineCents, want.OfflineCents)
	}
}

// TestRunAdvisedOracleBeatsFallback is the consistency acceptance
// property: full trust in an oracle predictor plays the offline
// optimum on every stop, so its mean cost strictly beats the
// constrained fallback and its realized CR is exactly 1.
func TestRunAdvisedOracleBeatsFallback(t *testing.T) {
	stops := testTrace(2000)
	pol := mustSoftML(t, 1)
	base, err := Run(Config{Costs: testCosts, Policy: pol.Fallback()}, stops, rand.New(rand.NewPCG(5, 6)))
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := RunAdvised(AdvisedConfig{
		Config:    Config{Costs: testCosts},
		Advised:   pol,
		Predictor: predict.Oracle{},
	}, stops, rand.New(rand.NewPCG(5, 6)))
	if err != nil {
		t.Fatal(err)
	}
	if oracle.OnlineCents >= base.OnlineCents {
		t.Errorf("oracle advised cost %v did not beat fallback %v", oracle.OnlineCents, base.OnlineCents)
	}
	if cr := oracle.CR(); math.Abs(cr-1) > 1e-9 {
		t.Errorf("oracle at full trust realized CR %v, want exactly 1", cr)
	}
}

// TestRunAdvisedAdversaryStaysBounded: even under the worst predictor
// at full trust, every realized per-stop cost respects the closed-form
// bound of the threshold that was played — trusting advice never
// creates an unbounded ratio.
func TestRunAdvisedAdversaryStaysBounded(t *testing.T) {
	stops := testTrace(500)
	pol := mustSoftML(t, 1)
	res, err := RunAdvised(AdvisedConfig{
		Config:    Config{Costs: testCosts},
		Advised:   pol,
		Predictor: predict.Adversarial{B: 28},
	}, stops, rand.New(rand.NewPCG(5, 6)))
	if err != nil {
		t.Fatal(err)
	}
	rate := testCosts.IdlingCentsPerSec
	for i, s := range res.Stops {
		// Realized cost of one stop with threshold x is at most x + b
		// in abstract units.
		if s.OnlineCents > (s.Threshold+28)*rate+1e-9 {
			t.Fatalf("stop %d cost %v exceeds threshold bound", i, s.OnlineCents)
		}
	}
	if res.CR() < 1 {
		t.Errorf("CR %v < 1", res.CR())
	}
}

// TestRunAdvisedValidation: nil pieces are config errors, not panics.
func TestRunAdvisedValidation(t *testing.T) {
	pol := mustSoftML(t, 0.5)
	if _, err := RunAdvised(AdvisedConfig{Config: Config{Costs: testCosts}, Predictor: predict.Oracle{}}, []float64{5}, simRNG()); err == nil {
		t.Error("want error for nil advised policy")
	}
	if _, err := RunAdvised(AdvisedConfig{Config: Config{Costs: testCosts}, Advised: pol}, []float64{5}, simRNG()); err == nil {
		t.Error("want error for nil predictor")
	}
}

// TestSweepFrontierShape: the sweep covers the full grid, every cell
// is finite, and lambda = 0 cells pin both columns to the constrained
// fallback regardless of predictor.
func TestSweepFrontierShape(t *testing.T) {
	f, err := SweepFrontier(FrontierConfig{
		Costs: testCosts,
		Stats: testStats,
		Stops: testTrace(400),
		Seed:  20140601,
	})
	if err != nil {
		t.Fatal(err)
	}
	nl, np := len(DefaultFrontierLambdas()), len(DefaultFrontierPredictors(28))
	if len(f.Points) != nl*np {
		t.Fatalf("%d points, want %d", len(f.Points), nl*np)
	}
	var zeroCR, zeroRob float64
	first := true
	for _, p := range f.Points {
		if math.IsNaN(p.MeanCR) || math.IsInf(p.MeanCR, 0) || p.MeanCR < 1-1e-9 {
			t.Errorf("cell (%s, %g) mean CR %v", p.Predictor, p.Lambda, p.MeanCR)
		}
		if p.RobustnessCR < 1-1e-9 {
			t.Errorf("cell (%s, %g) robustness %v < 1", p.Predictor, p.Lambda, p.RobustnessCR)
		}
		if p.Lambda == 0 {
			if first {
				zeroCR, zeroRob, first = p.MeanCR, p.RobustnessCR, false
				continue
			}
			if p.RobustnessCR != zeroRob {
				t.Errorf("lambda=0 cell (%s) robustness %v differs from %v", p.Predictor, p.RobustnessCR, zeroRob)
			}
			// The noisy predictor consumes RNG draws of its own, which
			// shifts the fallback stream; only non-consuming predictors
			// replay the identical lambda=0 trace.
			if p.Predictor != "noisy(0.5)" && p.MeanCR != zeroCR {
				t.Errorf("lambda=0 cell (%s) CR %v differs from %v", p.Predictor, p.MeanCR, zeroCR)
			}
		}
	}
}

// TestSweepFrontierMonotone is the frontier acceptance property: the
// robustness bound is nondecreasing in lambda, and the oracle row's
// realized CR reaches 1 at full trust — strictly below its lambda = 0
// value.
func TestSweepFrontierMonotone(t *testing.T) {
	for _, engine := range []string{FrontierSoftML, FrontierDistAdvice} {
		f, err := SweepFrontier(FrontierConfig{
			Costs:  testCosts,
			Stats:  testStats,
			Engine: engine,
			Stops:  testTrace(2000),
			Seed:   20140601,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, pred := range []string{"oracle", "stale", "adversarial"} {
			row := f.Row(pred)
			if len(row) != len(f.Lambdas) {
				t.Fatalf("%s/%s row has %d points", engine, pred, len(row))
			}
			for i := 1; i < len(row); i++ {
				if row[i].RobustnessCR < row[i-1].RobustnessCR-1e-9 {
					t.Errorf("%s/%s robustness not monotone: %v after %v at lambda %g",
						engine, pred, row[i].RobustnessCR, row[i-1].RobustnessCR, row[i].Lambda)
				}
			}
		}
		orc := f.Row("oracle")
		last := orc[len(orc)-1]
		if engine == FrontierSoftML {
			if math.Abs(last.MeanCR-1) > 1e-9 {
				t.Errorf("%s oracle at lambda=1 CR %v, want 1", engine, last.MeanCR)
			}
		}
		if last.MeanCR >= orc[0].MeanCR {
			t.Errorf("%s oracle CR did not improve with trust: %v at lambda=1 vs %v at lambda=0",
				engine, last.MeanCR, orc[0].MeanCR)
		}
	}
}

// TestSweepFrontierDeterministic: same config, same table.
func TestSweepFrontierDeterministic(t *testing.T) {
	cfg := FrontierConfig{Costs: testCosts, Stats: testStats, Stops: testTrace(300), Seed: 7}
	a, err := SweepFrontier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepFrontier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d diverged: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

// TestSweepFrontierValidation: bad engine, bad lambda, empty trace.
func TestSweepFrontierValidation(t *testing.T) {
	base := FrontierConfig{Costs: testCosts, Stats: testStats, Stops: []float64{5, 50}, Seed: 1}
	bad := base
	bad.Engine = "psychic"
	if _, err := SweepFrontier(bad); err == nil {
		t.Error("want error for unknown engine")
	}
	bad = base
	bad.Lambdas = []float64{0, 2}
	if _, err := SweepFrontier(bad); err == nil {
		t.Error("want error for lambda outside [0,1]")
	}
	bad = base
	bad.Stops = nil
	if _, err := SweepFrontier(bad); err == nil {
		t.Error("want error for empty trace")
	}
}
