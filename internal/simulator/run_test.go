package simulator

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"idlereduce/internal/costmodel"
	"idlereduce/internal/skirental"
)

// testCosts: idling 0.0258 cents/s (the Appendix C value) with restart
// chosen so B = 28 exactly.
var testCosts = costmodel.CostRatio{
	IdlingCentsPerSec: 0.0258,
	RestartCents:      0.0258 * 28,
}

func simRNG() *rand.Rand { return rand.New(rand.NewPCG(11, 13)) }

func TestRunDETKnownCosts(t *testing.T) {
	stops := []float64{10, 30, 5} // short, long, short for B=28
	res, err := Run(Config{Costs: testCosts, Policy: skirental.NewDET(28)}, stops, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	// Abstract units: online 10 + 56 + 5 = 71; offline 10 + 28 + 5 = 43.
	rate := testCosts.IdlingCentsPerSec
	if math.Abs(res.OnlineCents-71*rate) > 1e-9 {
		t.Errorf("online %v want %v", res.OnlineCents, 71*rate)
	}
	if math.Abs(res.OfflineCents-43*rate) > 1e-9 {
		t.Errorf("offline %v want %v", res.OfflineCents, 43*rate)
	}
	if res.Restarts != 1 {
		t.Errorf("restarts %d want 1", res.Restarts)
	}
	if math.Abs(res.CR()-71.0/43.0) > 1e-12 {
		t.Errorf("CR %v", res.CR())
	}
	if math.Abs(res.IdleSec-(10+28+5)) > 1e-9 {
		t.Errorf("idle %v", res.IdleSec)
	}
}

func TestRunMatchesAbstractSkiRental(t *testing.T) {
	// Metered cents divided by the idling rate must equal the abstract
	// online cost for every policy and stop, restart edge cases included.
	stops := []float64{1, 27.999, 28, 28.001, 100, 3}
	for _, p := range []skirental.Policy{
		skirental.NewTOI(28), skirental.NewDET(28), skirental.NewBDet(28, 11),
	} {
		res, err := Run(Config{Costs: testCosts, Policy: p}, stops, simRNG())
		if err != nil {
			t.Fatal(err)
		}
		for i, out := range res.Stops {
			want := skirental.OnlineCost(out.Threshold, stops[i], 28)
			got := out.OnlineCents / testCosts.IdlingCentsPerSec
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%s stop %d: %v want %v", p.Name(), i, got, want)
			}
		}
	}
}

func TestRunNEVNeverRestarts(t *testing.T) {
	stops := []float64{100, 500, 3}
	res, err := Run(Config{Costs: testCosts, Policy: skirental.NewNEV(28)}, stops, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 0 {
		t.Errorf("NEV restarted %d times", res.Restarts)
	}
	if math.Abs(res.IdleSec-603) > 1e-9 {
		t.Errorf("idle %v want 603", res.IdleSec)
	}
}

func TestRunTOIAlwaysRestarts(t *testing.T) {
	stops := []float64{5, 10, 200}
	res, err := Run(Config{Costs: testCosts, Policy: skirental.NewTOI(28)}, stops, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 3 {
		t.Errorf("TOI restarts %d want 3", res.Restarts)
	}
	if res.IdleSec != 0 {
		t.Errorf("TOI idled %v s", res.IdleSec)
	}
}

func TestRunEventLog(t *testing.T) {
	stops := []float64{5, 40}
	res, err := Run(Config{Costs: testCosts, Policy: skirental.NewDET(28), RecordEvents: true}, stops, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]EventKind, len(res.Events))
	for i, e := range res.Events {
		kinds[i] = e.Kind
	}
	want := []EventKind{EvStop, EvDriveOn, EvStop, EvEngineOff, EvRestart}
	if len(kinds) != len(want) {
		t.Fatalf("events %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d: %v want %v", i, kinds[i], want[i])
		}
	}
	// Clock sanity: strictly non-decreasing timestamps, and total
	// duration = gaps + stop lengths.
	prev := -1.0
	for _, e := range res.Events {
		if e.T < prev {
			t.Errorf("clock went backwards at %v", e.T)
		}
		prev = e.T
	}
	if math.Abs(res.DurationSec-(60+5+60+40)) > 1e-9 {
		t.Errorf("duration %v", res.DurationSec)
	}
}

func TestRunNoEventsByDefault(t *testing.T) {
	res, err := Run(Config{Costs: testCosts, Policy: skirental.NewTOI(28)}, []float64{5}, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != nil {
		t.Error("events recorded without RecordEvents")
	}
}

func TestRunConfigValidation(t *testing.T) {
	cases := map[string]Config{
		"nil policy": {Costs: testCosts},
		"zero rate":  {Costs: costmodel.CostRatio{RestartCents: 1}, Policy: skirental.NewDET(28)},
		"mismatched B": {
			Costs:  costmodel.CostRatio{IdlingCentsPerSec: 1, RestartCents: 50},
			Policy: skirental.NewDET(28),
		},
		"negative gap": {Costs: testCosts, Policy: skirental.NewDET(28), DriveGapSec: -1},
	}
	for name, cfg := range cases {
		if _, err := Run(cfg, []float64{5}, simRNG()); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: want ErrConfig, got %v", name, err)
		}
	}
}

func TestRunRejectsBadStops(t *testing.T) {
	cfg := Config{Costs: testCosts, Policy: skirental.NewDET(28)}
	if _, err := Run(cfg, []float64{-1}, simRNG()); err == nil {
		t.Error("want error for negative stop")
	}
	if _, err := Run(cfg, []float64{math.NaN()}, simRNG()); err == nil {
		t.Error("want error for NaN stop")
	}
}

func TestRunRandomizedPolicyConverges(t *testing.T) {
	// Mean metered CR of N-Rand over many stops approaches e/(e-1)
	// because every stop's expected cost is e/(e-1)·offline.
	stops := make([]float64, 40_000)
	rng := simRNG()
	for i := range stops {
		stops[i] = 1 + rng.Float64()*120
	}
	res, err := Run(Config{Costs: testCosts, Policy: skirental.NewNRand(28)}, stops, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := math.E / (math.E - 1)
	if math.Abs(res.CR()-want) > 0.02 {
		t.Errorf("CR %v want ≈%v", res.CR(), want)
	}
}

func TestFuelSavedVsNEV(t *testing.T) {
	cfg := Config{Costs: testCosts, Policy: skirental.NewTOI(28)}
	stops := []float64{100, 200}
	res, err := Run(cfg, stops, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	// NEV cost = 300 s idle; TOI cost = 2 restarts = 56 s-equivalents.
	want := (300 - 56) * testCosts.IdlingCentsPerSec
	if math.Abs(res.FuelSavedCentsVsNEV(cfg)-want) > 1e-9 {
		t.Errorf("saved %v want %v", res.FuelSavedCentsVsNEV(cfg), want)
	}
}

func TestCompareOnTrace(t *testing.T) {
	policies := []skirental.Policy{
		skirental.NewTOI(28), skirental.NewDET(28), skirental.NewNRand(28),
	}
	stops := []float64{5, 80, 20, 300}
	results, err := CompareOnTrace(testCosts, policies, stops, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results %d", len(results))
	}
	for name, r := range results {
		if len(r.Stops) != 4 {
			t.Errorf("%s: stops %d", name, len(r.Stops))
		}
		if r.CR() < 1-1e-9 {
			t.Errorf("%s: CR %v below 1", name, r.CR())
		}
	}
	// Deterministic policies must be reproducible across calls.
	again, _ := CompareOnTrace(testCosts, policies, stops, 3)
	if again["N-Rand"].OnlineCents != results["N-Rand"].OnlineCents {
		t.Error("same seed should reproduce randomized results")
	}
}

func TestEngineInvalidTransitions(t *testing.T) {
	e := &engine{state: Driving}
	if _, err := e.driveOn(); !errors.Is(err, ErrBadTransition) {
		t.Error("driveOn while driving must fail")
	}
	if err := e.shutOff(); !errors.Is(err, ErrBadTransition) {
		t.Error("shutOff while driving must fail")
	}
	if err := e.beginStop(); err != nil {
		t.Fatal(err)
	}
	if err := e.beginStop(); !errors.Is(err, ErrBadTransition) {
		t.Error("double beginStop must fail")
	}
}

func TestStateAndEventStrings(t *testing.T) {
	if Driving.String() != "driving" || Idling.String() != "idling" || EngineOff.String() != "engine-off" {
		t.Error("state strings")
	}
	if State(9).String() == "" || EventKind(9).String() == "" {
		t.Error("unknown values must still print")
	}
	for _, k := range []EventKind{EvStop, EvEngineOff, EvRestart, EvDriveOn} {
		if k.String() == "" {
			t.Error("empty event kind string")
		}
	}
}

// detPolicy28 is a helper for cross-runner comparisons.
func detPolicy28() skirental.Policy { return skirental.NewDET(28) }
