package simulator

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"idlereduce/internal/multislope"
	"idlereduce/internal/numeric"
)

// MultiStateConfig parameterizes a multislope simulation: the powertrain
// ladder, the per-segment policy bundle, and the cents value of one cost
// unit (the multislope problem expresses costs in seconds of full
// idling, so this is the idling rate).
type MultiStateConfig struct {
	Policy            *multislope.Policy
	CentsPerCostUnit  float64
	RecordTransitions bool
}

// MultiStateStop records one stop of a multislope run.
type MultiStateStop struct {
	// Length is the stop length in seconds.
	Length float64
	// DeepestState is the lowest powertrain state reached (0 = stayed
	// at full idle).
	DeepestState int
	// TransitionTimes are the times (from stop start) at which the
	// vehicle moved down one state; len == DeepestState.
	TransitionTimes []float64
	// CostCents is the metered cost of the stop.
	CostCents float64
	// OfflineCents is the clairvoyant cost.
	OfflineCents float64
}

// MultiStateResult aggregates a multislope simulation.
type MultiStateResult struct {
	Stops        []MultiStateStop
	CostCents    float64
	OfflineCents float64
	// TimeInState[i] is the total seconds spent in powertrain state i
	// while stopped.
	TimeInState []float64
	// FullShutdowns counts stops that reached the final (engine-off)
	// state.
	FullShutdowns int
}

// CR returns the realized competitive ratio.
func (r *MultiStateResult) CR() float64 {
	if r.OfflineCents == 0 {
		return 1
	}
	return r.CostCents / r.OfflineCents
}

// ErrMultiState reports invalid multislope simulation input.
var ErrMultiState = errors.New("simulator: invalid multi-state config")

// RunMultiState simulates the policy bundle over the stop sequence.
//
// Per segment semantics, the vehicle moves from state i to i+1 at the
// running maximum of the drawn per-segment switch times (a later segment
// cannot engage before an earlier one physically, but its *cost* clock
// follows its own draw — the two views price identically under the
// additive decomposition, which the tests assert against
// multislope.Policy.CostForStop).
func RunMultiState(cfg MultiStateConfig, stops []float64, rng *rand.Rand) (*MultiStateResult, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrMultiState)
	}
	if cfg.CentsPerCostUnit <= 0 || math.IsNaN(cfg.CentsPerCostUnit) {
		return nil, fmt.Errorf("%w: cents per cost unit %v", ErrMultiState, cfg.CentsPerCostUnit)
	}
	prob := cfg.Policy.Problem()
	nStates := len(prob.Slopes())
	res := &MultiStateResult{TimeInState: make([]float64, nStates)}
	var cost, off numeric.KahanSum

	for i, y := range stops {
		if y < 0 || math.IsNaN(y) {
			return nil, fmt.Errorf("%w: stop %d has length %v", ErrMultiState, i, y)
		}
		xs := cfg.Policy.Thresholds(rng)
		out := MultiStateStop{Length: y}

		// Physical trajectory: running max of the switch draws.
		runMax := 0.0
		prev := 0.0
		for seg, x := range xs {
			runMax = math.Max(runMax, x)
			if runMax >= y {
				// Drove off before engaging this state.
				res.TimeInState[seg] += y - prev
				prev = y
				break
			}
			out.DeepestState = seg + 1
			if cfg.RecordTransitions {
				out.TransitionTimes = append(out.TransitionTimes, runMax)
			}
			res.TimeInState[seg] += runMax - prev
			prev = runMax
		}
		if prev < y {
			res.TimeInState[out.DeepestState] += y - prev
		}
		if out.DeepestState == nStates-1 {
			res.FullShutdowns++
		}

		out.CostCents = cfg.Policy.CostForStop(xs, y) * cfg.CentsPerCostUnit
		out.OfflineCents = prob.OfflineCost(y) * cfg.CentsPerCostUnit
		cost.Add(out.CostCents)
		off.Add(out.OfflineCents)
		res.Stops = append(res.Stops, out)
	}
	res.CostCents = cost.Sum()
	res.OfflineCents = off.Sum()
	return res, nil
}
