package simulator

import (
	"math"
	"strings"
	"testing"

	"idlereduce/internal/costmodel"
	"idlereduce/internal/skirental"
)

func TestEmissionsOfKnownCycle(t *testing.T) {
	// DET on {10, 30}: idles 10+28 = 38 s, restarts once.
	res, err := Run(Config{Costs: testCosts, Policy: skirental.NewDET(28)}, []float64{10, 30}, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	e := res.EmissionsOf()
	wantTHC := 38*costmodel.IdlingTHCMgPerSec + costmodel.RestartTHCMg
	wantNOx := 38*costmodel.IdlingNOxMgPerSec + costmodel.RestartNOxMg
	wantCO := 38*costmodel.IdlingCOMgPerSec + costmodel.RestartCOMg
	if math.Abs(e.THCmg-wantTHC) > 1e-9 || math.Abs(e.NOxMg-wantNOx) > 1e-9 || math.Abs(e.COmg-wantCO) > 1e-9 {
		t.Errorf("emissions %+v, want {%v %v %v}", e, wantTHC, wantNOx, wantCO)
	}
}

func TestNEVEmissionsReference(t *testing.T) {
	res, err := Run(Config{Costs: testCosts, Policy: skirental.NewTOI(28)}, []float64{100, 200}, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	ref := res.NEVEmissions()
	if math.Abs(ref.NOxMg-300*costmodel.IdlingNOxMgPerSec) > 1e-9 {
		t.Errorf("NEV NOx %v", ref.NOxMg)
	}
}

func TestCOTensionOnShortStops(t *testing.T) {
	// Appendix C's anti-idling objection: on short stops TOI emits far
	// more CO than idling through (1253 mg/restart vs 0.108 mg/s).
	stops := []float64{15, 20, 12}
	toi, err := Run(Config{Costs: testCosts, Policy: skirental.NewTOI(28)}, stops, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	co := toi.EmissionsOf().COmg
	coNEV := toi.NEVEmissions().COmg
	if co < 100*coNEV {
		t.Errorf("TOI CO %v should dwarf idling-through CO %v on short stops", co, coNEV)
	}
	// But THC and fuel flip on long stops: idling 600 s emits more THC
	// than one restart.
	long, err := Run(Config{Costs: testCosts, Policy: skirental.NewTOI(28)}, []float64{600}, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	if long.EmissionsOf().THCmg > long.NEVEmissions().THCmg {
		t.Errorf("restart THC %v should beat 600 s idling THC %v", long.EmissionsOf().THCmg, long.NEVEmissions().THCmg)
	}
}

func TestEmissionsAddAndString(t *testing.T) {
	a := Emissions{THCmg: 1, NOxMg: 2, COmg: 3}
	a.Add(Emissions{THCmg: 10, NOxMg: 20, COmg: 30})
	if a.THCmg != 11 || a.NOxMg != 22 || a.COmg != 33 {
		t.Errorf("%+v", a)
	}
	s := a.String()
	for _, frag := range []string{"THC", "NOx", "CO"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q: %s", frag, s)
		}
	}
}

func TestWearOfConventionalVehicle(t *testing.T) {
	v := costmodel.NewFordFusion2011(3.5, false)
	res, err := Run(Config{Costs: testCosts, Policy: skirental.NewTOI(28)}, []float64{50, 60, 70}, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.WearOf(v)
	if err != nil {
		t.Fatal(err)
	}
	// 3 restarts: starter (55+115)*100/34000 and battery 230*100/(4*365*32.43) each.
	wantStarter := 3 * (55.0 + 115.0) * 100 / 34000
	if math.Abs(w.StarterCents-wantStarter) > 1e-9 {
		t.Errorf("starter %v want %v", w.StarterCents, wantStarter)
	}
	if w.BatteryCents <= 0 || w.TotalCents() != w.StarterCents+w.BatteryCents {
		t.Errorf("wear %+v", w)
	}
}

func TestWearOfSSVHasNoStarterWear(t *testing.T) {
	v := costmodel.NewFordFusion2011(3.5, true)
	res, err := Run(Config{Costs: testCosts, Policy: skirental.NewTOI(28)}, []float64{50}, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.WearOf(v)
	if err != nil {
		t.Fatal(err)
	}
	if w.StarterCents != 0 {
		t.Errorf("SSV starter wear %v", w.StarterCents)
	}
}

func TestWearOfBadVehicle(t *testing.T) {
	res, err := Run(Config{Costs: testCosts, Policy: skirental.NewTOI(28)}, []float64{50}, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	bad := costmodel.NewFordFusion2011(3.5, false)
	bad.StarterLifetimeStarts = 0
	if _, err := res.WearOf(bad); err == nil {
		t.Error("want error for zero starter lifetime")
	}
	bad2 := costmodel.NewFordFusion2011(3.5, true)
	bad2.BatteryWarrantyYears = 0
	if _, err := res.WearOf(bad2); err == nil {
		t.Error("want error for zero warranty")
	}
}
