package simulator

import (
	"errors"
	"math"
	"testing"

	"idlereduce/internal/multislope"
)

func threeStatePolicy(t *testing.T) *multislope.Policy {
	t.Helper()
	prob, err := multislope.AutomotiveThreeState(28)
	if err != nil {
		t.Fatal(err)
	}
	return multislope.NewDeterministic(prob)
}

func TestRunMultiStateCostsMatchDecomposition(t *testing.T) {
	pol := threeStatePolicy(t)
	stops := []float64{3, 10, 30, 70, 500}
	const rate = 0.0258
	res, err := RunMultiState(MultiStateConfig{Policy: pol, CentsPerCostUnit: rate}, stops, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	// MS-DET is deterministic: per-stop costs must equal the analytic
	// mean cost exactly.
	for i, out := range res.Stops {
		want := pol.MeanCostForStop(stops[i]) * rate
		if math.Abs(out.CostCents-want) > 1e-9 {
			t.Errorf("stop %d: %v want %v", i, out.CostCents, want)
		}
	}
	if math.Abs(res.CR()-pol.TraceCR(stops)) > 1e-9 {
		t.Errorf("CR %v vs analytic %v", res.CR(), pol.TraceCR(stops))
	}
}

func TestRunMultiStateTrajectory(t *testing.T) {
	// MS-DET thresholds: beta1 ≈ 7.27, beta2 ≈ 53.3.
	pol := threeStatePolicy(t)
	stops := []float64{5, 20, 100}
	res, err := RunMultiState(MultiStateConfig{Policy: pol, CentsPerCostUnit: 1, RecordTransitions: true}, stops, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	wantDeepest := []int{0, 1, 2}
	for i, out := range res.Stops {
		if out.DeepestState != wantDeepest[i] {
			t.Errorf("stop %d: deepest %d want %d", i, out.DeepestState, wantDeepest[i])
		}
		if len(out.TransitionTimes) != out.DeepestState {
			t.Errorf("stop %d: %d transitions for depth %d", i, len(out.TransitionTimes), out.DeepestState)
		}
		// Transition times are increasing and below the stop length.
		prev := 0.0
		for _, tt := range out.TransitionTimes {
			if tt < prev || tt >= out.Length {
				t.Errorf("stop %d: transition at %v invalid", i, tt)
			}
			prev = tt
		}
	}
	if res.FullShutdowns != 1 {
		t.Errorf("full shutdowns %d want 1", res.FullShutdowns)
	}
	// Time-in-state accounting sums to total stopped time.
	total := 0.0
	for _, ts := range res.TimeInState {
		if ts < 0 {
			t.Errorf("negative state time %v", ts)
		}
		total += ts
	}
	if math.Abs(total-125) > 1e-9 {
		t.Errorf("state time sums to %v, want 125", total)
	}
}

func TestRunMultiStateRandomizedMatchesAnalytic(t *testing.T) {
	prob, err := multislope.AutomotiveThreeState(28)
	if err != nil {
		t.Fatal(err)
	}
	pol := multislope.NewRandomized(prob)
	stops := make([]float64, 30_000)
	rng := simRNG()
	for i := range stops {
		stops[i] = 1 + rng.Float64()*150
	}
	res, err := RunMultiState(MultiStateConfig{Policy: pol, CentsPerCostUnit: 1}, stops, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := pol.TraceCR(stops)
	if math.Abs(res.CR()-want) > 0.01*want {
		t.Errorf("MC CR %v vs analytic %v", res.CR(), want)
	}
}

func TestRunMultiStateValidation(t *testing.T) {
	pol := threeStatePolicy(t)
	if _, err := RunMultiState(MultiStateConfig{CentsPerCostUnit: 1}, []float64{1}, simRNG()); !errors.Is(err, ErrMultiState) {
		t.Error("want ErrMultiState for nil policy")
	}
	if _, err := RunMultiState(MultiStateConfig{Policy: pol}, []float64{1}, simRNG()); !errors.Is(err, ErrMultiState) {
		t.Error("want ErrMultiState for zero rate")
	}
	if _, err := RunMultiState(MultiStateConfig{Policy: pol, CentsPerCostUnit: 1}, []float64{-1}, simRNG()); !errors.Is(err, ErrMultiState) {
		t.Error("want ErrMultiState for negative stop")
	}
}

func TestRunMultiStateReducesToClassic(t *testing.T) {
	// Two-slope ladder: the multi-state runner and the classic Run must
	// meter identical costs for the DET bundle.
	prob, err := multislope.NewProblem([]multislope.Slope{{Buy: 0, Rate: 1}, {Buy: 28, Rate: 0}})
	if err != nil {
		t.Fatal(err)
	}
	pol := multislope.NewDeterministic(prob)
	stops := []float64{10, 30, 5, 200}
	ms, err := RunMultiState(MultiStateConfig{Policy: pol, CentsPerCostUnit: testCosts.IdlingCentsPerSec}, stops, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	classic, err := Run(Config{Costs: testCosts, Policy: detPolicy28()}, stops, simRNG())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms.CostCents-classic.OnlineCents) > 1e-9 {
		t.Errorf("multi-state %v vs classic %v", ms.CostCents, classic.OnlineCents)
	}
	if math.Abs(ms.OfflineCents-classic.OfflineCents) > 1e-9 {
		t.Errorf("offline mismatch %v vs %v", ms.OfflineCents, classic.OfflineCents)
	}
}
