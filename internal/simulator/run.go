package simulator

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand/v2"

	"idlereduce/internal/costmodel"
	"idlereduce/internal/numeric"
	"idlereduce/internal/obs"
	"idlereduce/internal/skirental"
)

// Config parameterizes a simulation run.
type Config struct {
	// Costs supplies the idling rate (cents/s) and restart cost (cents).
	// Its ratio B must match the policy's break-even interval.
	Costs costmodel.CostRatio
	// Policy decides when the engine is shut off at each stop.
	Policy skirental.Policy
	// DriveGapSec is the driving time inserted between stops on the
	// event timeline (cost-neutral; purely for realistic logs). Zero
	// uses a 60 s default.
	DriveGapSec float64
	// RecordEvents enables the per-transition event log.
	RecordEvents bool
}

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("simulator: invalid config")

func (c Config) validate() error {
	if c.Policy == nil {
		return fmt.Errorf("%w: nil policy", ErrConfig)
	}
	if c.Costs.IdlingCentsPerSec <= 0 || c.Costs.RestartCents < 0 {
		return fmt.Errorf("%w: costs %+v", ErrConfig, c.Costs)
	}
	b := c.Costs.B()
	if math.Abs(b-c.Policy.B()) > 1e-6*b {
		return fmt.Errorf("%w: cost ratio B=%v does not match policy B=%v", ErrConfig, b, c.Policy.B())
	}
	if c.DriveGapSec < 0 {
		return fmt.Errorf("%w: negative drive gap", ErrConfig)
	}
	return nil
}

// StopOutcome records one simulated stop.
type StopOutcome struct {
	// Length is the stop length in seconds.
	Length float64
	// Threshold is the policy's drawn idling threshold.
	Threshold float64
	// EngineOff reports whether the engine was shut off (and hence
	// restarted when driving on).
	EngineOff bool
	// IdleSec is the time spent idling during this stop.
	IdleSec float64
	// OnlineCents is the metered policy cost of the stop.
	OnlineCents float64
	// OfflineCents is the clairvoyant cost of the stop.
	OfflineCents float64
}

// Result aggregates a simulation run.
type Result struct {
	// Stops holds the per-stop outcomes, in input order.
	Stops []StopOutcome
	// Events is the transition log (when Config.RecordEvents).
	Events []*Event
	// OnlineCents and OfflineCents are metered totals.
	OnlineCents  float64
	OfflineCents float64
	// IdleSec is total idling time; Restarts counts engine restarts.
	IdleSec  float64
	Restarts int
	// DurationSec is the simulated wall-clock length of the cycle.
	DurationSec float64
}

// CR returns the realized competitive ratio of the run (1 for a
// zero-cost cycle).
func (r *Result) CR() float64 {
	if r.OfflineCents == 0 {
		return 1
	}
	return r.OnlineCents / r.OfflineCents
}

// FuelSavedCentsVsNEV returns the metered saving relative to never
// turning the engine off on the same stops.
func (r *Result) FuelSavedCentsVsNEV(c Config) float64 {
	var nev numeric.KahanSum
	for _, s := range r.Stops {
		nev.Add(s.Length * c.Costs.IdlingCentsPerSec)
	}
	return nev.Sum() - r.OnlineCents
}

// Run simulates the policy over the stop sequence. Randomized policies
// draw one threshold per stop from rng.
func Run(cfg Config, stops []float64, rng *rand.Rand) (*Result, error) {
	return RunContext(context.Background(), cfg, stops, rng)
}

// RunContext is Run with an observability sink: when ctx carries an
// obs.Recorder the run publishes per-stop outcomes (online/offline
// cents, idle time and drawn thresholds as histograms), engine
// transition counters, and a simulator.run span. Without a recorder
// the instrumentation reduces to a nil check per stop.
func RunContext(ctx context.Context, cfg Config, stops []float64, rng *rand.Rand) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rec := obs.FromContext(ctx)
	if rec.On() {
		defer rec.StartSpan("simulator.run",
			slog.String("policy", cfg.Policy.Name()),
			slog.Int("stops", len(stops)))()
	}
	gap := cfg.DriveGapSec
	if gap == 0 {
		gap = 60
	}
	idleRate := cfg.Costs.IdlingCentsPerSec
	restart := cfg.Costs.RestartCents
	b := cfg.Costs.B()

	eng := &engine{state: Driving, record: cfg.RecordEvents}
	res := &Result{Stops: make([]StopOutcome, 0, len(stops))}
	var online, offline numeric.KahanSum

	for i, y := range stops {
		if y < 0 || math.IsNaN(y) {
			return nil, fmt.Errorf("%w: stop %d has length %v", ErrConfig, i, y)
		}
		eng.clock += gap
		eng.stop = i
		if err := eng.beginStop(); err != nil {
			return nil, err
		}
		x := cfg.Policy.Threshold(rng)
		if x < 0 || math.IsNaN(x) {
			return nil, fmt.Errorf("simulator: policy %q drew invalid threshold %v", cfg.Policy.Name(), x)
		}

		out := StopOutcome{Length: y, Threshold: x}
		if y < x {
			// Drove off before the threshold: pure idling.
			out.IdleSec = y
			eng.clock += y
			if _, err := eng.driveOn(); err != nil {
				return nil, err
			}
		} else {
			// Idled until the threshold, shut off, restarted on departure.
			out.IdleSec = x
			out.EngineOff = true
			eng.clock += x
			if err := eng.shutOff(); err != nil {
				return nil, err
			}
			eng.clock += y - x
			restarted, err := eng.driveOn()
			if err != nil {
				return nil, err
			}
			if !restarted {
				return nil, fmt.Errorf("simulator: engine reported no restart after shut-off")
			}
			res.Restarts++
		}
		out.OnlineCents = out.IdleSec * idleRate
		if out.EngineOff {
			out.OnlineCents += restart
		}
		out.OfflineCents = skirental.OfflineCost(y, b) * idleRate
		online.Add(out.OnlineCents)
		offline.Add(out.OfflineCents)
		res.IdleSec += out.IdleSec
		res.Stops = append(res.Stops, out)
		if rec.On() {
			recordStop(rec, out)
		}
	}
	res.OnlineCents = online.Sum()
	res.OfflineCents = offline.Sum()
	res.DurationSec = eng.clock
	res.Events = eng.events
	if rec.On() {
		recordRun(rec, res)
	}
	return res, nil
}

// recordStop publishes one stop's outcome to the sink.
func recordStop(rec *obs.Recorder, out StopOutcome) {
	rec.Add("sim_stops_total", 1)
	if out.EngineOff {
		rec.Add("sim_engine_off_total", 1)
	} else {
		rec.Add("sim_drive_on_idling_total", 1)
	}
	rec.Observe("sim_stop_len_sec", out.Length)
	rec.Observe("sim_threshold_sec", out.Threshold)
	rec.Observe("sim_idle_sec", out.IdleSec)
	rec.Observe("sim_online_cents", out.OnlineCents)
	rec.Observe("sim_offline_cents", out.OfflineCents)
}

// recordRun publishes run totals and the engine transition counts. The
// transition counts are derivable from the state machine's structure
// (every stop is Driving -> Idling, every shut-off is followed by a
// restart), so they stay correct whether or not the event log is on.
func recordRun(rec *obs.Recorder, res *Result) {
	n := int64(len(res.Stops))
	restarts := int64(res.Restarts)
	rec.Add(obs.L("sim_transition_total", "kind", EvStop.String()), n)
	rec.Add(obs.L("sim_transition_total", "kind", EvEngineOff.String()), restarts)
	rec.Add(obs.L("sim_transition_total", "kind", EvRestart.String()), restarts)
	rec.Add(obs.L("sim_transition_total", "kind", EvDriveOn.String()), n-restarts)
	rec.Set("sim_last_run_cr", res.CR())
	rec.Set("sim_last_run_duration_sec", res.DurationSec)
}

// CompareOnTrace runs several policies on the same stop sequence with
// independent but identically seeded randomness and returns the results
// keyed by policy name.
func CompareOnTrace(costs costmodel.CostRatio, policies []skirental.Policy, stops []float64, seed uint64) (map[string]*Result, error) {
	out := make(map[string]*Result, len(policies))
	for _, p := range policies {
		rng := rand.New(rand.NewPCG(seed, 0x5bf0_3635))
		res, err := Run(Config{Costs: costs, Policy: p}, stops, rng)
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", p.Name(), err)
		}
		out[p.Name()] = res
	}
	return out, nil
}
