package simulator

import (
	"fmt"
	"math"
	"math/rand/v2"

	"idlereduce/internal/costmodel"
	"idlereduce/internal/predict"
	"idlereduce/internal/skirental"
)

// The consistency-robustness frontier (Fig. 4 of the learning-
// augmented ski-rental literature, reproduced for the constrained
// idling policies): sweep the trust parameter lambda over a grid of
// predictor models and report, per cell, the realized mean competitive
// ratio on a fixed trace plus the closed-form worst-case guarantee of
// the thresholds that trust level can reach. lambda = 0 pins both to
// the constrained fallback; raising lambda improves consistency under
// good predictors while the robustness bound degrades monotonically.

// Frontier engines.
const (
	// FrontierSoftML sweeps the point-forecast blend (predict.SoftML).
	FrontierSoftML = "softml"
	// FrontierDistAdvice sweeps the distributional-advice policy
	// (predict.DistAdvice).
	FrontierDistAdvice = "distadvice"
)

// FrontierConfig parameterizes one sweep.
type FrontierConfig struct {
	// Costs supplies the cost ratio; its B is the break-even interval
	// everything is built at.
	Costs costmodel.CostRatio
	// Stats is the constrained (mu_B-, q_B+) pair the fallback serves.
	Stats skirental.Stats
	// Engine selects the advised policy family; empty means softml.
	Engine string
	// Lambdas is the trust grid; empty takes 0, 0.25, 0.5, 0.75, 1.
	Lambdas []float64
	// Predictors are the forecast models to sweep; empty takes the
	// standard panel (oracle, noisy, stale, biased, adversarial).
	Predictors []predict.Predictor
	// Stops is the evaluation trace all cells share.
	Stops []float64
	// Seed roots the per-cell RNG; every cell replays the same stream
	// so cells differ only by (lambda, predictor).
	Seed uint64
}

// FrontierPoint is one (lambda, predictor) cell of the sweep.
type FrontierPoint struct {
	Lambda    float64 `json:"lambda"`
	Predictor string  `json:"predictor"`
	// MeanCR is the realized online/offline cost ratio on the trace.
	MeanCR float64 `json:"mean_cr"`
	// OnlineCents is the metered policy cost of the trace.
	OnlineCents float64 `json:"online_cents"`
	// RobustnessCR is the closed-form worst-case competitive ratio over
	// every threshold this trust level can reach: the price of the
	// advice if an adversary controls both the predictions and the
	// stop lengths. Nondecreasing in lambda by construction.
	RobustnessCR float64 `json:"robustness_cr"`
}

// Frontier is a completed sweep: points in predictor-major,
// lambda-minor order, plus the constants every cell shared.
type Frontier struct {
	Engine  string          `json:"engine"`
	B       float64         `json:"b"`
	Mu      float64         `json:"mu"`
	Q       float64         `json:"q"`
	Stops   int             `json:"stops"`
	Seed    uint64          `json:"seed"`
	Lambdas []float64       `json:"lambdas"`
	Points  []FrontierPoint `json:"points"`
}

// DefaultFrontierLambdas is the standard trust grid.
func DefaultFrontierLambdas() []float64 { return []float64{0, 0.25, 0.5, 0.75, 1} }

// DefaultFrontierPredictors is the standard adversarial panel: the
// consistency anchor, three realistic degradations, and the worst
// case.
func DefaultFrontierPredictors(b float64) []predict.Predictor {
	return []predict.Predictor{
		predict.Oracle{},
		predict.Miscalibrated{Sigma: 0.5},
		predict.Stale{},
		predict.Biased{Factor: 0.5},
		predict.Adversarial{B: b},
	}
}

// newAdvised builds the advised policy for one cell.
func newAdvised(engine string, c *skirental.Constrained, lambda float64) (AdvisedPolicy, error) {
	switch engine {
	case "", FrontierSoftML:
		return predict.NewSoftML(c, lambda)
	case FrontierDistAdvice:
		return predict.NewDistAdvice(c, lambda)
	default:
		return nil, fmt.Errorf("%w: unknown frontier engine %q", ErrConfig, engine)
	}
}

// robustnessCR evaluates the worst-case guarantee of trust level
// lambda: advice pulls the fallback's representative threshold x*
// toward 0 (predicted long) or b (predicted short) with weight lambda,
// so an adversary controlling both the stop distribution and the
// predictions routes every stop to the worse end of the reachable pair
// ((1-lambda)x*, (1-lambda)x* + lambda*b). WorstCaseMixedCost is the
// closed form of that attack, normalized by the offline lower bound
// mu + q*b; it is nondecreasing in lambda because the pair only
// spreads. For the randomized N-Rand fallback the representative
// threshold stands in for the draw, making the bound a conservative
// envelope rather than the (tighter) randomized guarantee.
func robustnessCR(c *skirental.Constrained, lambda float64) float64 {
	b := c.B()
	s := c.Stats()
	x, _ := predict.RepresentativeThreshold(b, s.MuBMinus, s.QBPlus)
	if x > b {
		x = b
	}
	x0 := (1 - lambda) * x
	xb := (1-lambda)*x + lambda*b
	worst := skirental.WorstCaseMixedCost(b, s.MuBMinus, s.QBPlus, x0, xb)
	offline := s.MuBMinus + s.QBPlus*b
	if offline <= 0 {
		return 1
	}
	return worst / offline
}

// SweepFrontier runs the full sweep. Every cell replays the same seed
// and trace, so the table is a pure function of the config.
func SweepFrontier(cfg FrontierConfig) (*Frontier, error) {
	b := cfg.Costs.B()
	c, err := skirental.NewConstrained(b, cfg.Stats)
	if err != nil {
		return nil, fmt.Errorf("simulator: frontier fallback: %w", err)
	}
	lambdas := cfg.Lambdas
	if len(lambdas) == 0 {
		lambdas = DefaultFrontierLambdas()
	}
	predictors := cfg.Predictors
	if len(predictors) == 0 {
		predictors = DefaultFrontierPredictors(b)
	}
	if len(cfg.Stops) == 0 {
		return nil, fmt.Errorf("%w: frontier needs a stop trace", ErrConfig)
	}
	f := &Frontier{
		Engine:  cfg.Engine,
		B:       b,
		Mu:      cfg.Stats.MuBMinus,
		Q:       cfg.Stats.QBPlus,
		Stops:   len(cfg.Stops),
		Seed:    cfg.Seed,
		Lambdas: lambdas,
	}
	if f.Engine == "" {
		f.Engine = FrontierSoftML
	}
	for _, p := range predictors {
		for _, lambda := range lambdas {
			if math.IsNaN(lambda) || lambda < 0 || lambda > 1 {
				return nil, fmt.Errorf("%w: lambda %v outside [0, 1]", ErrConfig, lambda)
			}
			pol, err := newAdvised(cfg.Engine, c, lambda)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewPCG(cfg.Seed, 0x5bf0_3635))
			res, err := RunAdvised(AdvisedConfig{
				Config:    Config{Costs: cfg.Costs},
				Advised:   pol,
				Predictor: p,
			}, cfg.Stops, rng)
			if err != nil {
				return nil, fmt.Errorf("simulator: frontier cell (%s, lambda=%g): %w", p.Name(), lambda, err)
			}
			f.Points = append(f.Points, FrontierPoint{
				Lambda:       lambda,
				Predictor:    p.Name(),
				MeanCR:       res.CR(),
				OnlineCents:  res.OnlineCents,
				RobustnessCR: robustnessCR(c, lambda),
			})
		}
	}
	return f, nil
}

// Row returns one predictor's points in lambda order.
func (f *Frontier) Row(predictor string) []FrontierPoint {
	var out []FrontierPoint
	for _, p := range f.Points {
		if p.Predictor == predictor {
			out = append(out, p)
		}
	}
	return out
}
