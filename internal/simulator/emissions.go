package simulator

import (
	"fmt"

	"idlereduce/internal/costmodel"
)

// Emissions itemizes the exhaust emissions of a simulated drive cycle
// using the Argonne per-second idling and per-restart masses cited in
// Appendix C.2.3. All masses in milligrams.
type Emissions struct {
	THCmg float64
	NOxMg float64
	COmg  float64
}

// Add accumulates another emission total.
func (e *Emissions) Add(o Emissions) {
	e.THCmg += o.THCmg
	e.NOxMg += o.NOxMg
	e.COmg += o.COmg
}

// String renders the masses.
func (e Emissions) String() string {
	return fmt.Sprintf("THC %.1f mg, NOx %.2f mg, CO %.1f mg", e.THCmg, e.NOxMg, e.COmg)
}

// EmissionsOf computes the drive cycle's exhaust emissions from its
// idling time and restart count:
//
//	idling: 0.266 mg/s THC, 0.0097 mg/s NOx, 0.108 mg/s CO
//	restart: 44 mg THC, 6 mg NOx, 1253 mg CO
//
// The tension Appendix C discusses is visible here: restarts emit far
// more CO per event than idling per second, so TOI trades fuel for CO
// unless stops are long.
func (r *Result) EmissionsOf() Emissions {
	return Emissions{
		THCmg: r.IdleSec*costmodel.IdlingTHCMgPerSec + float64(r.Restarts)*costmodel.RestartTHCMg,
		NOxMg: r.IdleSec*costmodel.IdlingNOxMgPerSec + float64(r.Restarts)*costmodel.RestartNOxMg,
		COmg:  r.IdleSec*costmodel.IdlingCOMgPerSec + float64(r.Restarts)*costmodel.RestartCOMg,
	}
}

// NEVEmissions returns the emissions the same stops would have produced
// with the engine idling throughout (the never-turn-off reference), for
// net-impact comparisons.
func (r *Result) NEVEmissions() Emissions {
	idle := 0.0
	for _, s := range r.Stops {
		idle += s.Length
	}
	return Emissions{
		THCmg: idle * costmodel.IdlingTHCMgPerSec,
		NOxMg: idle * costmodel.IdlingNOxMgPerSec,
		COmg:  idle * costmodel.IdlingCOMgPerSec,
	}
}

// Wear itemizes the mechanical wear costs of a simulated drive cycle in
// cents, using the Appendix C amortization model.
type Wear struct {
	StarterCents float64
	BatteryCents float64
}

// TotalCents is the summed wear.
func (w Wear) TotalCents() float64 { return w.StarterCents + w.BatteryCents }

// WearOf prices the run's restarts against a vehicle's starter and
// battery amortization.
func (r *Result) WearOf(v costmodel.Vehicle) (Wear, error) {
	starter, err := v.StarterCentsPerStart()
	if err != nil {
		return Wear{}, err
	}
	battery, err := v.BatteryCentsPerStart()
	if err != nil {
		return Wear{}, err
	}
	n := float64(r.Restarts)
	return Wear{
		StarterCents: n * starter,
		BatteryCents: n * battery,
	}, nil
}
