package stats

import (
	"math"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	xs := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3} // range [0,3), 3 bins
	h, err := NewHistogram(xs, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Bins: [0,1): {0, 0.5}; [1,2): {1, 1.5}; [2,3]: {2, 2.5, 3}.
	want := []int{2, 2, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d: %d want %d", i, h.Counts[i], w)
		}
	}
	if h.Total() != 7 {
		t.Errorf("total %d", h.Total())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h, _ := NewHistogram([]float64{-1, 0.5, 10, math.NaN()}, 0, 1, 2)
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Total() != 3 { // NaN not counted
		t.Errorf("total %d", h.Total())
	}
}

func TestHistogramDensityNormalized(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i) / 1000 // uniform on [0,1)
	}
	h, _ := NewHistogram(xs, 0, 1, 10)
	integral := 0.0
	width := 0.1
	for i := range h.Counts {
		integral += h.Density(i) * width
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Errorf("density integrates to %v", integral)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(nil, 0, 10, 5)
	if h.BinCenter(0) != 1 || h.BinCenter(4) != 9 {
		t.Errorf("centers %v %v", h.BinCenter(0), h.BinCenter(4))
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("want error for zero bins")
	}
	if _, err := NewHistogram(nil, 1, 1, 3); err == nil {
		t.Error("want error for empty range")
	}
}

func TestECDFBasics(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 3 {
		t.Errorf("N %d", e.N())
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 1.0 / 3}, {2.5, 2.0 / 3}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v want %v", c.x, got, c.want)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Error("want error")
	}
}

func TestBootstrapCIContainsTruth(t *testing.T) {
	// CI for the mean of a known sample should bracket the sample mean.
	rng := NewRNG(9)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64() * 10
	}
	m := Mean(xs)
	lo, hi, err := BootstrapCI(xs, Mean, 2000, 0.95, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= m && m <= hi) {
		t.Errorf("CI [%v, %v] does not contain sample mean %v", lo, hi, m)
	}
	if hi-lo <= 0 || hi-lo > 2 {
		t.Errorf("implausible CI width %v", hi-lo)
	}
}

func TestBootstrapCIEmpty(t *testing.T) {
	if _, _, err := BootstrapCI(nil, Mean, 10, 0.95, NewRNG(1)); err == nil {
		t.Error("want error for empty sample")
	}
}

func TestBootstrapCIDefaults(t *testing.T) {
	rng := NewRNG(10)
	// Invalid conf and resamples fall back to defaults without error.
	lo, hi, err := BootstrapCI([]float64{1, 2, 3}, Mean, 0, 2.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi {
		t.Errorf("lo %v > hi %v", lo, hi)
	}
}

func TestNewRNGDeterministic(t *testing.T) {
	a, b := NewRNG(77), NewRNG(77)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(78)
	same := true
	a2 := NewRNG(77)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different streams")
	}
}
