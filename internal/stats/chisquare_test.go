package stats

import (
	"errors"
	"math"
	"testing"

	"idlereduce/internal/dist"
)

func TestChiSquareSFKnownValues(t *testing.T) {
	// Textbook values: P(X > 3.841) = 0.05 for df=1;
	// P(X > 18.307) = 0.05 for df=10.
	cases := []struct{ x, df, want float64 }{
		{3.841, 1, 0.05},
		{18.307, 10, 0.05},
		{0, 5, 1},
		{2.706, 1, 0.10},
	}
	for _, c := range cases {
		if got := chiSquareSF(c.x, c.df); math.Abs(got-c.want) > 0.001 {
			t.Errorf("SF(%v, %v) = %v want %v", c.x, c.df, got, c.want)
		}
	}
}

func TestChiSquareGOFAcceptsTrueNull(t *testing.T) {
	d := dist.NewExponentialMean(20)
	rng := NewRNG(31)
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	res, err := ChiSquareGOF(xs, d.CDF, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejects(0.01) {
		t.Errorf("false rejection: stat=%v p=%v", res.Stat, res.P)
	}
	if res.DF != 19 {
		t.Errorf("df %d", res.DF)
	}
}

func TestChiSquareGOFRejectsWrongNull(t *testing.T) {
	// Heavy-tailed data vs fitted exponential (1 fitted param): reject.
	d := dist.NewMixture(
		dist.Component{W: 0.85, D: dist.NewLogNormalMeanCV(20, 1.2)},
		dist.Component{W: 0.15, D: dist.PointMass{At: 300}},
	)
	rng := NewRNG(32)
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	null := dist.NewExponentialMean(Mean(xs))
	res, err := ChiSquareGOF(xs, null.CDF, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejects(0.001) {
		t.Errorf("failed to reject: stat=%v p=%v", res.Stat, res.P)
	}
}

func TestChiSquareGOFErrors(t *testing.T) {
	if _, err := ChiSquareGOF(nil, func(float64) float64 { return 0 }, 10, 0); !errors.Is(err, ErrEmpty) {
		t.Error("want ErrEmpty")
	}
	// Too many fitted params for the bins.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if _, err := ChiSquareGOF(xs, func(float64) float64 { return 0.5 }, 2, 2); err == nil {
		t.Error("want df error")
	}
}

func TestChiSquareGOFSmallSampleBins(t *testing.T) {
	// 30 observations: bins auto-shrunk so expected counts >= 5.
	d := dist.Uniform{Lo: 0, Hi: 1}
	rng := NewRNG(33)
	xs := make([]float64, 30)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	res, err := ChiSquareGOF(xs, d.CDF, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF > 5 {
		t.Errorf("df %d too large for n=30", res.DF)
	}
}

func TestAutocorrelationIIDNearZero(t *testing.T) {
	rng := NewRNG(34)
	xs := make([]float64, 20_000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	r, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.03 {
		t.Errorf("iid lag-1 autocorrelation %v", r)
	}
	if r0, _ := Autocorrelation(xs, 0); r0 != 1 {
		t.Errorf("lag-0 must be 1, got %v", r0)
	}
}

func TestAutocorrelationAR1Positive(t *testing.T) {
	// AR(1) with phi = 0.7: lag-1 autocorrelation ≈ 0.7.
	rng := NewRNG(35)
	xs := make([]float64, 30_000)
	prev := 0.0
	for i := range xs {
		prev = 0.7*prev + rng.NormFloat64()
		xs[i] = prev
	}
	r, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.7) > 0.03 {
		t.Errorf("AR(1) lag-1 %v want ≈0.7", r)
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation(nil, 1); !errors.Is(err, ErrEmpty) {
		t.Error("want ErrEmpty")
	}
	if _, err := Autocorrelation([]float64{1, 2}, 5); err == nil {
		t.Error("want lag error")
	}
	if r, err := Autocorrelation([]float64{3, 3, 3}, 1); err != nil || r != 0 {
		t.Errorf("constant series: r=%v err=%v", r, err)
	}
}

func TestLjungBoxDetectsCorrelation(t *testing.T) {
	rng := NewRNG(36)
	// IID: not rejected.
	iid := make([]float64, 5000)
	for i := range iid {
		iid[i] = rng.Float64()
	}
	res, err := LjungBox(iid, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejects(0.01) {
		t.Errorf("false positive on iid: p=%v", res.P)
	}
	// AR(1): rejected decisively.
	ar := make([]float64, 5000)
	prev := 0.0
	for i := range ar {
		prev = 0.6*prev + rng.NormFloat64()
		ar[i] = prev
	}
	res, err = LjungBox(ar, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejects(0.001) {
		t.Errorf("missed AR(1): p=%v", res.P)
	}
	if _, err := LjungBox(nil, 3); !errors.Is(err, ErrEmpty) {
		t.Error("want ErrEmpty")
	}
	if _, err := LjungBox(iid, 0); err == nil {
		t.Error("want lag-count error")
	}
}

func TestSortedCopyDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := sortedCopy(xs)
	if xs[0] != 3 || s[0] != 1 {
		t.Errorf("xs=%v s=%v", xs, s)
	}
}
