package stats

import (
	"errors"
	"math"
	"testing"

	"idlereduce/internal/dist"
)

func TestKSOneSampleAcceptsCorrectNull(t *testing.T) {
	// Exponential data vs exponential null: should not reject.
	d := dist.NewExponentialMean(30)
	rng := NewRNG(1)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	res, err := KSOneSample(xs, d.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejects(0.01) {
		t.Errorf("false rejection: D=%v p=%v", res.D, res.P)
	}
}

func TestKSOneSampleRejectsWrongNull(t *testing.T) {
	// Heavy-tailed data vs exponential null with the same mean: reject.
	// This is exactly the Section 5 finding for the NREL stop lengths.
	body := dist.NewLogNormalMeanCV(25, 1.3)
	tail := dist.Pareto{Xm: 80, Alpha: 1.8}
	d := dist.NewMixture(
		dist.Component{W: 0.85, D: body},
		dist.Component{W: 0.15, D: tail},
	)
	rng := NewRNG(2)
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	null := dist.NewExponentialMean(Mean(xs))
	res, err := KSOneSample(xs, null.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejects(0.01) {
		t.Errorf("failed to reject exponential null: D=%v p=%v", res.D, res.P)
	}
}

func TestKSOneSampleEmpty(t *testing.T) {
	if _, err := KSOneSample(nil, func(float64) float64 { return 0 }); !errors.Is(err, ErrEmpty) {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestKSStatisticExactSmallSample(t *testing.T) {
	// Single observation at the median of U[0,1]: D = 0.5.
	res, err := KSOneSample([]float64{0.5}, func(x float64) float64 { return x })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.D-0.5) > 1e-12 {
		t.Errorf("D = %v want 0.5", res.D)
	}
}

func TestKSTwoSampleSameDistribution(t *testing.T) {
	d := dist.NewLogNormalMeanCV(40, 1.0)
	rng := NewRNG(3)
	xs := make([]float64, 1500)
	ys := make([]float64, 1500)
	for i := range xs {
		xs[i] = d.Sample(rng)
		ys[i] = d.Sample(rng)
	}
	res, err := KSTwoSample(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejects(0.01) {
		t.Errorf("false rejection: D=%v p=%v", res.D, res.P)
	}
}

func TestKSTwoSampleDifferentDistributions(t *testing.T) {
	rng := NewRNG(4)
	a := dist.NewExponentialMean(20)
	b := dist.NewExponentialMean(60)
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = a.Sample(rng)
		ys[i] = b.Sample(rng)
	}
	res, err := KSTwoSample(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejects(0.001) {
		t.Errorf("failed to reject: D=%v p=%v", res.D, res.P)
	}
}

func TestKSTwoSampleIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	res, err := KSTwoSample(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 0 {
		t.Errorf("identical samples: D = %v", res.D)
	}
	if res.P < 0.999 {
		t.Errorf("identical samples: p = %v", res.P)
	}
}

func TestKSTwoSampleEmpty(t *testing.T) {
	if _, err := KSTwoSample(nil, []float64{1}); !errors.Is(err, ErrEmpty) {
		t.Error("want ErrEmpty")
	}
	if _, err := KSTwoSample([]float64{1}, nil); !errors.Is(err, ErrEmpty) {
		t.Error("want ErrEmpty")
	}
}

func TestKSQBoundaries(t *testing.T) {
	if ksQ(0) != 1 {
		t.Error("Q(0) must be 1")
	}
	if ksQ(-1) != 1 {
		t.Error("Q(neg) must be 1")
	}
	if q := ksQ(10); q > 1e-30 {
		t.Errorf("Q(10) = %v, want ~0", q)
	}
	// Known value: Q(1.0) ≈ 0.26999967.
	if q := ksQ(1.0); math.Abs(q-0.26999967) > 1e-6 {
		t.Errorf("Q(1) = %v", q)
	}
}
