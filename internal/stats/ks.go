package stats

import (
	"math"
	"sort"
)

// KSResult is the outcome of a Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the KS statistic: the supremum distance between the compared
	// CDFs.
	D float64
	// P is the asymptotic p-value of the statistic.
	P float64
	// N is the effective sample size used in the asymptotic formula.
	N float64
}

// Rejects reports whether the null hypothesis is rejected at level alpha.
func (r KSResult) Rejects(alpha float64) bool { return r.P < alpha }

// KSOneSample tests the sample xs against the hypothesized continuous CDF
// cdf. Section 5 uses this (with a fitted exponential CDF) to show the
// observed stop-length distributions are not exponential.
func KSOneSample(xs []float64, cdf func(float64) float64) (KSResult, error) {
	n := len(xs)
	if n == 0 {
		return KSResult{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	d := 0.0
	for i, x := range s {
		fx := cdf(x)
		// Distance above and below the step.
		dPlus := float64(i+1)/float64(n) - fx
		dMinus := fx - float64(i)/float64(n)
		if dPlus > d {
			d = dPlus
		}
		if dMinus > d {
			d = dMinus
		}
	}
	en := float64(n)
	return KSResult{D: d, P: ksPValue(d, en), N: en}, nil
}

// KSTwoSample tests whether xs and ys are drawn from the same distribution.
func KSTwoSample(xs, ys []float64) (KSResult, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return KSResult{}, ErrEmpty
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var i, j int
	d := 0.0
	for i < len(a) && j < len(b) {
		v := math.Min(a[i], b[j])
		for i < len(a) && a[i] <= v {
			i++
		}
		for j < len(b) && b[j] <= v {
			j++
		}
		fa := float64(i) / float64(len(a))
		fb := float64(j) / float64(len(b))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	en := float64(len(a)) * float64(len(b)) / float64(len(a)+len(b))
	return KSResult{D: d, P: ksPValue(d, en), N: en}, nil
}

// ksPValue is the asymptotic Kolmogorov distribution tail with the
// Stephens small-sample correction:
// p = Q_KS((sqrt(n) + 0.12 + 0.11/sqrt(n)) · D).
func ksPValue(d, en float64) float64 {
	sq := math.Sqrt(en)
	lambda := (sq + 0.12 + 0.11/sq) * d
	return ksQ(lambda)
}

// ksQ is the Kolmogorov survival function
// Q(λ) = 2 Σ_{k=1..∞} (-1)^{k-1} e^{-2k²λ²}.
func ksQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12*math.Abs(sum)+1e-300 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
