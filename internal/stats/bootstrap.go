package stats

import (
	"math/rand/v2"
	"sort"
)

// BootstrapCI estimates a percentile confidence interval for statistic fn
// of the sample xs using nResamples bootstrap resamples at confidence
// level conf (e.g. 0.95). The fleet experiments use it to attach intervals
// to mean competitive ratios.
func BootstrapCI(xs []float64, fn func([]float64) float64, nResamples int, conf float64, rng *rand.Rand) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if nResamples < 1 {
		nResamples = 1000
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	estimates := make([]float64, nResamples)
	buf := make([]float64, len(xs))
	for r := 0; r < nResamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.IntN(len(xs))]
		}
		estimates[r] = fn(buf)
	}
	sort.Float64s(estimates)
	alpha := (1 - conf) / 2
	lo = quantileSorted(estimates, alpha)
	hi = quantileSorted(estimates, 1-alpha)
	return lo, hi, nil
}

// NewRNG returns a deterministic PCG generator seeded from a single
// 64-bit value; all experiment code derives its randomness from here so
// runs are reproducible.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed*0x9e3779b97f4a7c15+0xbf58476d1ce4e5b9))
}
