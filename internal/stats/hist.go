package stats

import (
	"errors"
	"math"
	"sort"
)

// Histogram is a fixed-width binning of a sample over [Lo, Hi]; values
// outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram bins xs into nbins uniform bins over [lo, hi].
func NewHistogram(xs []float64, lo, hi float64, nbins int) (*Histogram, error) {
	if nbins < 1 {
		return nil, errors.New("stats: need at least one bin")
	}
	if !(lo < hi) {
		return nil, errors.New("stats: histogram range must satisfy lo < hi")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		switch {
		case math.IsNaN(x):
			continue
		case x < lo:
			h.Under++
		case x >= hi:
			// Values exactly at the top edge fall into the last bin.
			if x == hi {
				h.Counts[nbins-1]++
			} else {
				h.Over++
			}
		default:
			i := int((x - lo) / width)
			if i >= nbins {
				i = nbins - 1
			}
			h.Counts[i]++
		}
		h.total++
	}
	return h, nil
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Density returns the normalized density of bin i (so the histogram
// integrates to the in-range mass).
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.total) * width)
}

// Total returns the number of observations seen, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// ECDF is the empirical cumulative distribution function of a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts xs.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns the fraction of observations <= x.
func (e *ECDF) At(x float64) float64 {
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Sorted exposes the sorted observations (not a copy; callers must not
// mutate).
func (e *ECDF) Sorted() []float64 { return e.sorted }
