package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestDescribeKnownSample(t *testing.T) {
	s, err := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("mean %v", s.Mean)
	}
	// Sample std (n-1): sqrt(32/7).
	if math.Abs(s.Std-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("std %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Errorf("median %v", s.Median)
	}
}

func TestDescribeEmpty(t *testing.T) {
	if _, err := Describe(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestDescribeSingleton(t *testing.T) {
	s, err := Describe([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 42 || s.Std != 0 || s.Median != 42 || s.Q1 != 42 || s.Q3 != 42 {
		t.Errorf("%+v", s)
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Errorf("mean %v", Mean(xs))
	}
	if math.Abs(Std(xs)-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std %v", Std(xs))
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty should be NaN")
	}
	if Std([]float64{7}) != 0 {
		t.Error("std of singleton should be 0")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Error("want ErrEmpty")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		p1 := float64(a) / 255
		p2 := float64(b) / 255
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		q1, _ := Quantile(xs, p1)
		q2, _ := Quantile(xs, p2)
		return q1 <= q2+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFracAtMostTable1Style(t *testing.T) {
	// The Table 1 statistic: P{X <= mu + 2 sigma}.
	xs := []float64{5, 6, 7, 8, 100} // outlier drags the mean and std up
	s, _ := Describe(xs)
	frac := FracAtMost(xs, s.Mean+2*s.Std)
	if frac != 1 {
		t.Errorf("frac = %v", frac)
	}
	if got := FracAtMost(xs, 7); got != 0.6 {
		t.Errorf("FracAtMost(7) = %v want 0.6", got)
	}
	if !math.IsNaN(FracAtMost(nil, 1)) {
		t.Error("empty should give NaN")
	}
}

func TestDescribeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Describe(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}
