package stats

import (
	"errors"
	"math"
	"sort"

	"idlereduce/internal/numeric"
)

// ChiSquareResult is the outcome of a chi-square goodness-of-fit test.
type ChiSquareResult struct {
	// Stat is the chi-square statistic.
	Stat float64
	// DF is the degrees of freedom (bins - 1 - fitted parameters).
	DF int
	// P is the upper-tail p-value.
	P float64
}

// Rejects reports whether the null is rejected at level alpha.
func (r ChiSquareResult) Rejects(alpha float64) bool { return r.P < alpha }

// ChiSquareGOF tests the sample xs against the hypothesized CDF using
// equiprobable bins (so expected counts are uniform), with fittedParams
// parameters estimated from the data (1 for an exponential fitted by its
// mean). It complements the KS test in the Figure 3 analysis: KS is
// sensitive near the distribution's body, chi-square in the tails.
func ChiSquareGOF(xs []float64, cdf func(float64) float64, nBins, fittedParams int) (ChiSquareResult, error) {
	n := len(xs)
	if n == 0 {
		return ChiSquareResult{}, ErrEmpty
	}
	if nBins < 2 {
		nBins = int(math.Max(2, math.Floor(math.Sqrt(float64(n)))))
	}
	if exp := float64(n) / float64(nBins); exp < 5 {
		// Keep expected counts >= 5 for the asymptotic distribution.
		nBins = int(math.Max(2, float64(n)/5))
	}
	df := nBins - 1 - fittedParams
	if df < 1 {
		return ChiSquareResult{}, errors.New("stats: not enough bins for the fitted parameters")
	}

	// Count observations per equiprobable CDF bin via the probability
	// integral transform.
	counts := make([]int, nBins)
	for _, x := range xs {
		u := cdf(x)
		i := int(u * float64(nBins))
		if i < 0 {
			i = 0
		}
		if i >= nBins {
			i = nBins - 1
		}
		counts[i]++
	}
	expected := float64(n) / float64(nBins)
	stat := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	return ChiSquareResult{Stat: stat, DF: df, P: chiSquareSF(stat, float64(df))}, nil
}

// chiSquareSF is the chi-square survival function P(X > x) with k degrees
// of freedom, computed from the regularized upper incomplete gamma
// function Q(k/2, x/2).
func chiSquareSF(x, k float64) float64 {
	if x <= 0 {
		return 1
	}
	return numeric.UpperGammaRegularized(k/2, x/2)
}

// Autocorrelation returns the lag-k sample autocorrelation of xs. The
// ski-rental analysis treats stops as exchangeable; mechanistic traffic
// (queues, congestion waves) induces serial correlation this statistic
// exposes.
func Autocorrelation(xs []float64, lag int) (float64, error) {
	n := len(xs)
	if n == 0 {
		return 0, ErrEmpty
	}
	if lag < 0 || lag >= n {
		return 0, errors.New("stats: lag out of range")
	}
	if lag == 0 {
		return 1, nil
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n-lag; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	for _, x := range xs {
		den += (x - m) * (x - m)
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}

// LjungBox computes the Ljung-Box portmanteau statistic over lags 1..k
// and its chi-square p-value (df = k): a joint test for any serial
// correlation.
func LjungBox(xs []float64, k int) (ChiSquareResult, error) {
	n := len(xs)
	if n == 0 {
		return ChiSquareResult{}, ErrEmpty
	}
	if k < 1 || k >= n {
		return ChiSquareResult{}, errors.New("stats: invalid lag count")
	}
	stat := 0.0
	for lag := 1; lag <= k; lag++ {
		r, err := Autocorrelation(xs, lag)
		if err != nil {
			return ChiSquareResult{}, err
		}
		stat += r * r / float64(n-lag)
	}
	stat *= float64(n) * (float64(n) + 2)
	return ChiSquareResult{Stat: stat, DF: k, P: chiSquareSF(stat, float64(k))}, nil
}

// sortedCopy is a helper for tests needing order statistics.
func sortedCopy(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s
}
