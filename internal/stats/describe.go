// Package stats supplies the descriptive and inferential statistics used
// by the evaluation section: summary statistics of stop counts and stop
// lengths (Table 1, Figure 3), histograms and ECDFs for rendering the
// distributions, the Kolmogorov–Smirnov test used to reject the
// exponential stop-length hypothesis, and bootstrap confidence intervals
// for fleet-level competitive-ratio comparisons.
package stats

import (
	"errors"
	"math"
	"sort"

	"idlereduce/internal/numeric"
)

// ErrEmpty is returned by statistics requiring at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	Q1     float64 // 25th percentile
	Q3     float64 // 75th percentile
}

// Describe computes a Summary of xs.
func Describe(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mean := numeric.SumSlice(s) / float64(len(s))
	var sq numeric.KahanSum
	for _, x := range s {
		d := x - mean
		sq.Add(d * d)
	}
	std := 0.0
	if len(s) > 1 {
		std = math.Sqrt(sq.Sum() / float64(len(s)-1))
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		Std:    std,
		Min:    s[0],
		Max:    s[len(s)-1],
		Median: quantileSorted(s, 0.5),
		Q1:     quantileSorted(s, 0.25),
		Q3:     quantileSorted(s, 0.75),
	}, nil
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return numeric.SumSlice(xs) / float64(len(xs))
}

// Std returns the sample standard deviation (n-1), or 0 for fewer than two
// observations.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sq numeric.KahanSum
	for _, x := range xs {
		d := x - m
		sq.Add(d * d)
	}
	return math.Sqrt(sq.Sum() / float64(len(xs)-1))
}

// Quantile returns the q-th linear-interpolation quantile of xs
// (the "type 7" definition used by most statistics packages).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q), nil
}

// quantileSorted is Quantile on an already-sorted slice.
func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	q = numeric.Clamp(q, 0, 1)
	h := q * float64(n-1)
	i := int(math.Floor(h))
	if i >= n-1 {
		return s[n-1]
	}
	frac := h - float64(i)
	return s[i] + frac*(s[i+1]-s[i])
}

// FracAtMost returns the fraction of observations <= bound: the
// P{X <= mu+2sigma} column of Table 1.
func FracAtMost(xs []float64, bound float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	k := 0
	for _, x := range xs {
		if x <= bound {
			k++
		}
	}
	return float64(k) / float64(len(xs))
}
