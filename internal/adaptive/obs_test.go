package adaptive

import (
	"context"
	"testing"

	"idlereduce/internal/obs"
	"idlereduce/internal/stats"
)

// TestInstrumentedDriftPolicy runs the CUSUM-resetting policy across a
// hard regime change and checks the observability trail: re-tunes are
// counted, the vertex switch is labelled, and the alarm counter fires
// with its position recorded.
func TestInstrumentedDriftPolicy(t *testing.T) {
	rec := obs.NewRecorder("drift", nil, nil)
	ctx := obs.WithRecorder(context.Background(), rec)
	dp, err := NewWithDriftDetection(Config{B: 28}, DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dp.Instrument(ctx)

	rng := stats.NewRNG(8)
	var stopsSeq []float64
	for i := 0; i < 400; i++ {
		stopsSeq = append(stopsSeq, 2+rng.Float64()*8) // short-stop regime
	}
	for i := 0; i < 400; i++ {
		stopsSeq = append(stopsSeq, 300+rng.Float64()*400) // gridlock regime
	}
	if _, _, err := dp.Run(stopsSeq, stats.NewRNG(9)); err != nil {
		t.Fatal(err)
	}
	if dp.Drifts == 0 {
		t.Fatal("regime change did not trip the detector")
	}
	reg := rec.Registry()
	if got := reg.Counter("adaptive_cusum_alarm_total").Value(); got != int64(dp.Drifts) {
		t.Errorf("alarm counter %d want %d", got, dp.Drifts)
	}
	if got := reg.Gauge("adaptive_last_alarm_stop").Value(); got <= 400 {
		t.Errorf("alarm position %v should be in the second regime", got)
	}
	if got := reg.Gauge("adaptive_last_alarm_unix_ms").Value(); got <= 0 {
		t.Errorf("alarm timestamp %v", got)
	}
	if got := reg.Counter("adaptive_retune_total").Value(); got == 0 {
		t.Error("no re-tunes counted")
	}
	// The long-stop regime drives the selector away from its initial
	// vertex, so at least one switch must have been recorded.
	snap := reg.Snapshot()
	switches := int64(0)
	for _, c := range snap.Counters {
		if len(c.Name) > len("adaptive_switch_total") && c.Name[:len("adaptive_switch_total")] == "adaptive_switch_total" {
			switches += c.Value
		}
	}
	if switches == 0 {
		t.Error("no vertex switches counted")
	}
}

// TestUninstrumentedPolicyStillWorks pins that the recorder is optional.
func TestUninstrumentedPolicyStillWorks(t *testing.T) {
	p, err := New(Config{B: 28, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range []float64{5, 10, 40, 3, 100} {
		if err := p.Observe(y); err != nil {
			t.Fatal(err)
		}
	}
	if p.Seen() != 5 {
		t.Errorf("seen %d", p.Seen())
	}
}
