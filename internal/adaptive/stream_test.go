package adaptive

import (
	"math"
	"testing"
)

func newTestTracker(t *testing.T, cfg StreamConfig) *Tracker {
	t.Helper()
	tr, err := NewTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestStreamConfigValidates(t *testing.T) {
	bad := []StreamConfig{
		{B: 0},
		{B: -1},
		{B: math.NaN()},
		{B: 28, Forgetting: -0.5},
		{B: 28, Forgetting: 1.5},
		{B: 28, MinObservations: -3},
	}
	for _, cfg := range bad {
		if _, err := NewTracker(cfg); err == nil {
			t.Errorf("NewTracker(%+v) accepted invalid config", cfg)
		}
	}
	if _, err := NewTracker(StreamConfig{B: 28}); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestTrackerMomentsMatchPlainAverages(t *testing.T) {
	// With forgetting 1 the estimates are the plain empirical moments:
	// mu = mean of short stops over ALL stops, q = long-stop fraction.
	tr := newTestTracker(t, StreamConfig{B: 10})
	stops := []float64{2, 4, 6, 50, 8, 100}
	for _, y := range stops {
		if _, err := tr.Observe(y); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if want := (2.0 + 4 + 6 + 8) / 6; math.Abs(st.MuBMinus-want) > 1e-12 {
		t.Errorf("mu = %v, want %v", st.MuBMinus, want)
	}
	if want := 2.0 / 6; math.Abs(st.QBPlus-want) > 1e-12 {
		t.Errorf("q = %v, want %v", st.QBPlus, want)
	}
	if tr.Seen() != 6 {
		t.Errorf("seen = %d, want 6", tr.Seen())
	}
}

func TestTrackerStatsAlwaysFeasible(t *testing.T) {
	// Every counted short stop is at most B, so mu <= B(1-q) must hold
	// after any prefix of any stream — the invariant that lets a
	// re-tune feed Cache.Update without a feasibility failure.
	tr := newTestTracker(t, StreamConfig{B: 28, Forgetting: 0.9})
	stops := []float64{28, 28, 28, 29, 0, 27.999, 28, 1000, 28}
	for i, y := range stops {
		if _, err := tr.Observe(y); err != nil {
			t.Fatal(err)
		}
		st := tr.Stats()
		if st.MuBMinus > 28*(1-st.QBPlus)+1e-9 {
			t.Fatalf("after %d stops: mu %v > B(1-q) %v", i+1, st.MuBMinus, 28*(1-st.QBPlus))
		}
		if err := st.Validate(28); err != nil {
			t.Fatalf("after %d stops: %v", i+1, err)
		}
	}
}

func TestTrackerRejectsBadObservations(t *testing.T) {
	tr := newTestTracker(t, StreamConfig{B: 28})
	if _, err := tr.Observe(5); err != nil {
		t.Fatal(err)
	}
	before := tr.State()
	for _, y := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := tr.Observe(y); err == nil {
			t.Errorf("Observe(%v) accepted", y)
		}
	}
	if after := tr.State(); after != before {
		t.Errorf("rejected observations mutated state: %+v -> %+v", before, after)
	}
}

func TestStepMomentsMatchesObserve(t *testing.T) {
	// The audit replay re-derives transitions with StepMoments; it must
	// agree bit-for-bit with what Observe actually did.
	tr := newTestTracker(t, StreamConfig{B: 28, Forgetting: 0.97})
	stops := []float64{3, 40, 12, 28, 28.0001, 7}
	for _, y := range stops {
		up, err := tr.Observe(y)
		if err != nil {
			t.Fatal(err)
		}
		w2, mu2, q2 := StepMoments(up.PrevWSum, up.PrevMuSum, up.PrevQSum, 0.97, 28, y)
		if math.Float64bits(w2) != math.Float64bits(up.WSum) ||
			math.Float64bits(mu2) != math.Float64bits(up.MuSum) ||
			math.Float64bits(q2) != math.Float64bits(up.QSum) {
			t.Fatalf("StepMoments(%v) = (%v, %v, %v), Observe recorded (%v, %v, %v)",
				y, w2, mu2, q2, up.WSum, up.MuSum, up.QSum)
		}
	}
}

func TestTrackerWarmup(t *testing.T) {
	tr := newTestTracker(t, StreamConfig{B: 28, MinObservations: 3})
	for i := 0; i < 2; i++ {
		up, err := tr.Observe(5)
		if err != nil {
			t.Fatal(err)
		}
		if up.Warm {
			t.Fatalf("warm after %d observations, warmup is 3", i+1)
		}
	}
	up, err := tr.Observe(5)
	if err != nil {
		t.Fatal(err)
	}
	if !up.Warm {
		t.Fatal("not warm after MinObservations")
	}
}

func TestTrackerDriftAlarm(t *testing.T) {
	// A clean regime change on the capped stop length must raise a
	// CUSUM alarm; a steady stream must not.
	cfg := StreamConfig{B: 28, Drift: DriftConfig{Warmup: 20}}
	tr := newTestTracker(t, cfg)
	alarmed := false
	for i := 0; i < 60; i++ {
		y := 5 + float64(i%7) // steady short stops
		up, err := tr.Observe(y)
		if err != nil {
			t.Fatal(err)
		}
		if up.Alarm {
			alarmed = true
		}
	}
	if alarmed {
		t.Fatal("steady stream raised a drift alarm")
	}
	for i := 0; i < 60 && !alarmed; i++ {
		up, err := tr.Observe(40 + float64(i%10)) // long-stop regime
		if err != nil {
			t.Fatal(err)
		}
		alarmed = up.Alarm
	}
	if !alarmed {
		t.Fatal("regime change never alarmed")
	}
}

func TestTrackerStateRoundtrip(t *testing.T) {
	cfg := StreamConfig{B: 28, Forgetting: 0.95, MinObservations: 10, Drift: DriftConfig{Warmup: 15}}
	donor := newTestTracker(t, cfg)
	for i := 0; i < 40; i++ {
		if _, err := donor.Observe(4 + float64(i%9)); err != nil {
			t.Fatal(err)
		}
	}
	replica := newTestTracker(t, cfg)
	if err := replica.RestoreState(donor.State()); err != nil {
		t.Fatal(err)
	}
	// Identical futures: every subsequent observation must produce the
	// same update on both trackers, bit for bit.
	for i := 0; i < 40; i++ {
		y := 30 + float64(i%5)
		a, err := donor.Observe(y)
		if err != nil {
			t.Fatal(err)
		}
		b, err := replica.Observe(y)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("step %d diverged: donor %+v, replica %+v", i, a, b)
		}
	}
}

func TestTrackerStateValidateFailsClosed(t *testing.T) {
	tr := newTestTracker(t, StreamConfig{B: 28})
	bad := []TrackerState{
		{Seen: -1},
		{Seen: 0, WSum: 2},
		{Seen: 1, WSum: math.NaN()},
		{Seen: 1, WSum: 1, MuSum: math.Inf(1)},
		{Seen: 1, WSum: 1, QSum: -2},
		{Seen: 1, WSum: 1, Detector: DetectorState{N: -1}},
		{Seen: 1, WSum: 1, Detector: DetectorState{Mean: math.NaN()}},
		{Seen: 1, WSum: 1, Detector: DetectorState{Monitoring: true, N: 1}},
	}
	for _, s := range bad {
		if err := tr.RestoreState(s); err == nil {
			t.Errorf("RestoreState(%+v) accepted invalid state", s)
		}
	}
}
