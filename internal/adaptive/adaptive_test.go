package adaptive

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"idlereduce/internal/skirental"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(3, 14)) }

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{B: 0},
		{B: -1},
		{B: math.NaN()},
		{B: 28, Warmup: -5},
		{B: 28, Forgetting: -0.5},
		{B: 28, Forgetting: 1.5},
	}
	for _, c := range cases {
		if _, err := New(c); !errors.Is(err, ErrConfig) {
			t.Errorf("%+v: want ErrConfig, got %v", c, err)
		}
	}
	p, err := New(Config{B: 28})
	if err != nil {
		t.Fatal(err)
	}
	if p.cfg.Warmup != 10 || p.cfg.Forgetting != 1 {
		t.Errorf("defaults not applied: %+v", p.cfg)
	}
}

func TestWarmupPlaysNRand(t *testing.T) {
	p, _ := New(Config{B: 28, Warmup: 5})
	if p.Warm() {
		t.Error("warm before any observation")
	}
	if p.Choice() != skirental.ChoiceNRand {
		t.Errorf("warmup choice %v", p.Choice())
	}
	// Mean cost during warmup must match N-Rand exactly.
	n := skirental.NewNRand(28)
	for _, y := range []float64{5.0, 40.0} {
		if p.MeanCostForStop(y) != n.MeanCostForStop(y) {
			t.Error("warmup cost differs from N-Rand")
		}
	}
}

func TestObserveUpdatesStats(t *testing.T) {
	p, _ := New(Config{B: 28, Warmup: 1})
	for _, y := range []float64{10, 20, 100} {
		if err := p.Observe(y); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if math.Abs(s.MuBMinus-10) > 1e-12 { // (10+20)/3
		t.Errorf("mu %v want 10", s.MuBMinus)
	}
	if math.Abs(s.QBPlus-1.0/3) > 1e-12 {
		t.Errorf("q %v want 1/3", s.QBPlus)
	}
	if p.Seen() != 3 {
		t.Errorf("seen %d", p.Seen())
	}
}

func TestObserveRejectsInvalid(t *testing.T) {
	p, _ := New(Config{B: 28})
	for _, y := range []float64{-1, math.NaN(), math.Inf(1)} {
		if err := p.Observe(y); err == nil {
			t.Errorf("Observe(%v) should fail", y)
		}
	}
}

func TestConvergesToStaticChoice(t *testing.T) {
	// On stationary traffic the adaptive policy must settle on the same
	// vertex as the static proposed policy with exact statistics.
	rng := testRNG()
	stops := make([]float64, 3000)
	for i := range stops {
		if rng.Float64() < 0.9 {
			stops[i] = 2 + rng.Float64()*10 // short
		} else {
			stops[i] = 100 + rng.Float64()*400 // long
		}
	}
	static, err := skirental.NewConstrainedFromStops(28, stops)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := New(Config{B: 28})
	if _, _, err := p.Run(stops, rng); err != nil {
		t.Fatal(err)
	}
	if p.Choice() != static.Choice() {
		t.Errorf("adaptive settled on %v, static chooses %v", p.Choice(), static.Choice())
	}
	// Estimates close to the static ones.
	ss := static.Stats()
	as := p.Stats()
	if math.Abs(ss.MuBMinus-as.MuBMinus) > 0.05*(1+ss.MuBMinus) ||
		math.Abs(ss.QBPlus-as.QBPlus) > 0.05 {
		t.Errorf("estimates %+v vs exact %+v", as, ss)
	}
}

func TestAdaptiveNearStaticCost(t *testing.T) {
	// The cost of learning: adaptive CR should be within a few percent
	// of the static proposed policy on a long stationary trace.
	rng := testRNG()
	stops := make([]float64, 8000)
	for i := range stops {
		if rng.Float64() < 0.88 {
			stops[i] = 2 + rng.Float64()*12
		} else {
			stops[i] = 120 + rng.Float64()*600
		}
	}
	p, _ := New(Config{B: 28})
	on, off, err := p.RunMean(stops)
	if err != nil {
		t.Fatal(err)
	}
	adaptiveCR := on / off
	static, _ := skirental.NewConstrainedFromStops(28, stops)
	staticCR := skirental.TraceCR(static, stops)
	if adaptiveCR > staticCR*1.05 {
		t.Errorf("adaptive CR %v vs static %v: learning cost too high", adaptiveCR, staticCR)
	}
}

func TestRegimeChangeAdaptation(t *testing.T) {
	// First half: light traffic (DET territory). Second half: gridlock
	// (TOI territory). With forgetting the policy must switch vertices.
	var stops []float64
	rng := testRNG()
	for i := 0; i < 1500; i++ {
		stops = append(stops, 2+rng.Float64()*8) // all short
	}
	for i := 0; i < 1500; i++ {
		stops = append(stops, 200+rng.Float64()*600) // all long
	}
	p, _ := New(Config{B: 28, Forgetting: 0.99})
	// Run the first half, check DET-ish.
	if _, _, err := p.Run(stops[:1500], rng); err != nil {
		t.Fatal(err)
	}
	if p.Choice() != skirental.ChoiceDET {
		t.Errorf("light traffic: choice %v, want DET", p.Choice())
	}
	// Run the jam.
	if _, _, err := p.Run(stops[1500:], rng); err != nil {
		t.Fatal(err)
	}
	if p.Choice() != skirental.ChoiceTOI {
		t.Errorf("gridlock: choice %v, want TOI", p.Choice())
	}
}

func TestForgettingAdaptsFasterThanPlainAverage(t *testing.T) {
	// After a regime change, the forgetting policy should switch to TOI
	// within fewer stops than the plain running average.
	mkStops := func() []float64 {
		rng := rand.New(rand.NewPCG(7, 7))
		var stops []float64
		for i := 0; i < 2000; i++ {
			stops = append(stops, 2+rng.Float64()*8)
		}
		for i := 0; i < 2000; i++ {
			stops = append(stops, 300+rng.Float64()*500)
		}
		return stops
	}
	switchPoint := func(forgetting float64) int {
		p, err := New(Config{B: 28, Forgetting: forgetting})
		if err != nil {
			t.Fatal(err)
		}
		stops := mkStops()
		rng := rand.New(rand.NewPCG(8, 8))
		for i, y := range stops {
			p.Threshold(rng)
			if err := p.Observe(y); err != nil {
				t.Fatal(err)
			}
			if i >= 2000 && p.Choice() == skirental.ChoiceTOI {
				return i - 2000
			}
		}
		return len(stops)
	}
	fast := switchPoint(0.97)
	slow := switchPoint(1.0)
	if fast >= slow {
		t.Errorf("forgetting switch after %d stops, plain average after %d", fast, slow)
	}
}

func TestRunAccountsCosts(t *testing.T) {
	p, _ := New(Config{B: 28, Warmup: 1})
	stops := []float64{10, 40, 5}
	rng := testRNG()
	on, off, err := p.Run(stops, rng)
	if err != nil {
		t.Fatal(err)
	}
	if off != 10+28+5 {
		t.Errorf("offline %v", off)
	}
	if on < off {
		t.Errorf("online %v below offline %v", on, off)
	}
}
