package adaptive

import (
	"errors"
	"math"
	"testing"

	"idlereduce/internal/skirental"
)

func TestDriftConfigValidation(t *testing.T) {
	if _, err := NewDetector(DriftConfig{Threshold: -1}); !errors.Is(err, ErrConfig) {
		t.Error("want ErrConfig for negative threshold")
	}
	if _, err := NewDetector(DriftConfig{Warmup: 1}); !errors.Is(err, ErrConfig) {
		t.Error("want ErrConfig for warmup 1")
	}
	d, err := NewDetector(DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if d.cfg.Threshold != 10 || d.cfg.Slack != 0.5 || d.cfg.Warmup != 50 {
		t.Errorf("defaults not applied: %+v", d.cfg)
	}
}

func TestDetectorNoFalseAlarmOnStationary(t *testing.T) {
	d, _ := NewDetector(DriftConfig{})
	rng := testRNG()
	alarms := 0
	for i := 0; i < 5000; i++ {
		if d.Observe(10 + rng.NormFloat64()*3) {
			alarms++
		}
	}
	if alarms > 2 {
		t.Errorf("%d false alarms on stationary data", alarms)
	}
}

func TestDetectorFiresOnMeanShift(t *testing.T) {
	d, _ := NewDetector(DriftConfig{})
	rng := testRNG()
	for i := 0; i < 200; i++ {
		if d.Observe(10 + rng.NormFloat64()*3) {
			t.Fatal("premature alarm")
		}
	}
	if !d.Monitoring() {
		t.Fatal("not monitoring after 200 points")
	}
	// Shift the mean by 3 sigma: must fire within ~30 observations.
	fired := -1
	for i := 0; i < 100; i++ {
		if d.Observe(19 + rng.NormFloat64()*3) {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("3-sigma shift never detected")
	}
	if fired > 40 {
		t.Errorf("detection took %d observations", fired)
	}
	// After the alarm the detector re-baselines.
	if d.Monitoring() {
		t.Error("detector should re-baseline after an alarm")
	}
}

func TestDetectorIgnoresNonFinite(t *testing.T) {
	d, _ := NewDetector(DriftConfig{Warmup: 5})
	for i := 0; i < 10; i++ {
		d.Observe(1)
	}
	if d.Observe(math.NaN()) || d.Observe(math.Inf(1)) {
		t.Error("non-finite input fired an alarm")
	}
}

func TestDriftPolicySwitchesFasterThanForgetting(t *testing.T) {
	// Suburb -> gridlock: the drift-resetting policy should reach TOI in
	// fewer post-change stops than plain exponential forgetting.
	mkStops := func() []float64 {
		rng := testRNG()
		var stops []float64
		for i := 0; i < 2000; i++ {
			stops = append(stops, 2+rng.Float64()*8)
		}
		for i := 0; i < 2000; i++ {
			stops = append(stops, 300+rng.Float64()*500)
		}
		return stops
	}
	stops := mkStops()

	switchPointDrift := func() int {
		dp, err := NewWithDriftDetection(Config{B: 28}, DriftConfig{})
		if err != nil {
			t.Fatal(err)
		}
		rng := testRNG()
		for i, y := range stops {
			dp.Threshold(rng)
			if err := dp.Observe(y); err != nil {
				t.Fatal(err)
			}
			if i >= 2000 && dp.Choice() == skirental.ChoiceTOI {
				return i - 2000
			}
		}
		return len(stops)
	}
	switchPointForgetting := func() int {
		p, err := New(Config{B: 28, Forgetting: 0.995})
		if err != nil {
			t.Fatal(err)
		}
		rng := testRNG()
		for i, y := range stops {
			p.Threshold(rng)
			if err := p.Observe(y); err != nil {
				t.Fatal(err)
			}
			if i >= 2000 && p.Choice() == skirental.ChoiceTOI {
				return i - 2000
			}
		}
		return len(stops)
	}
	drift := switchPointDrift()
	forget := switchPointForgetting()
	if drift >= forget {
		t.Errorf("drift reset switched after %d stops, forgetting after %d", drift, forget)
	}
	if drift > 300 {
		t.Errorf("drift reset too slow: %d stops", drift)
	}
}

func TestDriftPolicyCountsAlarms(t *testing.T) {
	dp, err := NewWithDriftDetection(Config{B: 28}, DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rng := testRNG()
	var stops []float64
	for i := 0; i < 500; i++ {
		stops = append(stops, 3+rng.Float64()*4)
	}
	for i := 0; i < 500; i++ {
		stops = append(stops, 200+rng.Float64()*100)
	}
	if _, _, err := dp.Run(stops, rng); err != nil {
		t.Fatal(err)
	}
	if dp.Drifts < 1 {
		t.Error("regime change never flagged")
	}
	if dp.Drifts > 6 {
		t.Errorf("too many alarms: %d", dp.Drifts)
	}
}

func TestNewWithDriftDetectionErrors(t *testing.T) {
	if _, err := NewWithDriftDetection(Config{}, DriftConfig{}); err == nil {
		t.Error("want error for bad base config")
	}
	if _, err := NewWithDriftDetection(Config{B: 28}, DriftConfig{Slack: -1}); err == nil {
		t.Error("want error for bad drift config")
	}
}
