// Package adaptive provides an online-learning wrapper around the
// paper's constrained policy: instead of assuming (mu_B-, q_B+) are
// known a priori, the policy estimates them from the stops it has seen
// and re-runs the vertex selection after every observation.
//
// This operationalizes how a production stop-start controller would
// deploy the paper's algorithm — the statistics are a per-vehicle,
// per-route property that drifts with traffic. An exponential
// forgetting factor trades steady-state accuracy against adaptation
// speed under regime changes (commute vs. weekend, summer vs. winter).
// During a cold-start warmup the policy plays N-Rand, whose e/(e-1)
// guarantee needs no statistics at all.
package adaptive

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand/v2"
	"time"

	"idlereduce/internal/obs"
	"idlereduce/internal/skirental"
)

// Config parameterizes the adaptive policy.
type Config struct {
	// B is the break-even interval in seconds.
	B float64
	// Warmup is the number of observed stops before the estimates are
	// trusted; N-Rand is played until then. Default 10.
	Warmup int
	// Forgetting is the exponential decay applied to past observations
	// per new stop, in (0, 1]; 1 (default) keeps the plain running
	// average, smaller values adapt faster to drift.
	Forgetting float64
}

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("adaptive: invalid config")

func (c *Config) fill() error {
	if c.B <= 0 || math.IsNaN(c.B) {
		return fmt.Errorf("%w: B = %v", ErrConfig, c.B)
	}
	if c.Warmup == 0 {
		c.Warmup = 10
	}
	if c.Warmup < 0 {
		return fmt.Errorf("%w: warmup %d", ErrConfig, c.Warmup)
	}
	if c.Forgetting == 0 {
		c.Forgetting = 1
	}
	if c.Forgetting <= 0 || c.Forgetting > 1 {
		return fmt.Errorf("%w: forgetting %v", ErrConfig, c.Forgetting)
	}
	return nil
}

// Policy is the adaptive constrained policy. It satisfies
// skirental.Policy; call Observe with each completed stop's length to
// update the estimates.
type Policy struct {
	cfg Config

	// Exponentially-weighted sufficient statistics.
	wSum  float64 // total weight
	muSum float64 // weighted sum of y·1{y <= B}
	qSum  float64 // weighted count of 1{y > B}
	seen  int

	warm    *skirental.NRand
	current skirental.Policy // nil until warm

	// rec is the observability sink (nil-safe no-op by default).
	rec *obs.Recorder
}

// New builds an adaptive policy.
func New(cfg Config) (*Policy, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Policy{cfg: cfg, warm: skirental.NewNRand(cfg.B)}, nil
}

// Instrument attaches the context's observability sink: every re-tune
// is counted under adaptive_retune_total and vertex switches are
// counted per choice and logged as timestamped events. Returns p for
// chaining; without a recorder in ctx this is a no-op.
func (p *Policy) Instrument(ctx context.Context) *Policy {
	p.rec = obs.FromContext(ctx)
	return p
}

// Name implements skirental.Policy.
func (p *Policy) Name() string { return "Adaptive" }

// B implements skirental.Policy.
func (p *Policy) B() float64 { return p.cfg.B }

// Seen returns the number of observed stops.
func (p *Policy) Seen() int { return p.seen }

// Warm reports whether the warmup phase is over.
func (p *Policy) Warm() bool { return p.seen >= p.cfg.Warmup }

// Stats returns the current estimates (zero before any observation).
func (p *Policy) Stats() skirental.Stats {
	if p.wSum == 0 {
		return skirental.Stats{}
	}
	return skirental.Stats{
		MuBMinus: p.muSum / p.wSum,
		QBPlus:   p.qSum / p.wSum,
	}
}

// Choice returns the currently selected vertex; N-Rand during warmup.
func (p *Policy) Choice() skirental.Choice {
	if c, ok := p.current.(*skirental.Constrained); ok {
		return c.Choice()
	}
	return skirental.ChoiceNRand
}

// active returns the policy to play for the next stop.
func (p *Policy) active() skirental.Policy {
	if p.Warm() && p.current != nil {
		return p.current
	}
	return p.warm
}

// Threshold implements skirental.Policy.
func (p *Policy) Threshold(rng *rand.Rand) float64 {
	return p.active().Threshold(rng)
}

// MeanCostForStop implements skirental.Policy (expectation under the
// currently active strategy).
func (p *Policy) MeanCostForStop(y float64) float64 {
	return p.active().MeanCostForStop(y)
}

// Observe records a completed stop of length y and re-selects the vertex.
// Invalid lengths are rejected.
func (p *Policy) Observe(y float64) error {
	if y < 0 || math.IsNaN(y) || math.IsInf(y, 0) {
		return fmt.Errorf("%w: stop length %v", ErrConfig, y)
	}
	lam := p.cfg.Forgetting
	p.wSum = lam*p.wSum + 1
	p.muSum *= lam
	p.qSum *= lam
	if y > p.cfg.B {
		p.qSum++
	} else {
		p.muSum += y
	}
	p.seen++
	if !p.Warm() {
		return nil
	}
	s := p.Stats()
	before := p.Choice()
	cons, err := skirental.NewConstrained(p.cfg.B, s)
	if err != nil {
		// Estimates are always feasible by construction; an error here
		// is a bug worth surfacing.
		return fmt.Errorf("adaptive: reselect: %w", err)
	}
	p.current = cons
	if p.rec.On() {
		p.rec.Add("adaptive_retune_total", 1)
		if after := cons.Choice(); after != before {
			p.rec.Add(obs.L("adaptive_switch_total", "to", after.String()), 1)
			p.rec.Set("adaptive_last_switch_stop", float64(p.seen))
			p.rec.Set("adaptive_last_switch_unix_ms", float64(time.Now().UnixMilli()))
			p.rec.Event("adaptive.switch",
				slog.Int("stop", p.seen),
				slog.String("from", before.String()),
				slog.String("to", after.String()),
				slog.Float64("mu_b_minus", s.MuBMinus),
				slog.Float64("q_b_plus", s.QBPlus))
		}
	}
	return nil
}

// Run plays the adaptive policy over a stop sequence, observing each
// stop after paying for it (the decision for stop i uses only stops
// < i). It returns the accumulated online and offline costs in
// break-even-normalized units.
func (p *Policy) Run(stops []float64, rng *rand.Rand) (online, offline float64, err error) {
	for _, y := range stops {
		x := p.Threshold(rng)
		online += skirental.OnlineCost(x, y, p.cfg.B)
		offline += skirental.OfflineCost(y, p.cfg.B)
		if err := p.Observe(y); err != nil {
			return online, offline, err
		}
	}
	return online, offline, nil
}

// RunMean is Run with analytic per-stop expectations instead of sampled
// thresholds (no Monte Carlo noise); useful for evaluation.
func (p *Policy) RunMean(stops []float64) (online, offline float64, err error) {
	for _, y := range stops {
		online += p.MeanCostForStop(y)
		offline += skirental.OfflineCost(y, p.cfg.B)
		if err := p.Observe(y); err != nil {
			return online, offline, err
		}
	}
	return online, offline, nil
}
