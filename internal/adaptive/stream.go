package adaptive

import (
	"fmt"
	"math"

	"idlereduce/internal/skirental"
)

// StreamConfig parameterizes a Tracker: the streaming per-area
// estimator that idled's observe endpoint feeds. It reuses the
// adaptive policy's exponentially-weighted sufficient statistics and
// the CUSUM drift detector, but carries no playing policy — the
// serving strategies live in the daemon's cache and are re-derived
// from the tracker's estimates when the detector alarms.
type StreamConfig struct {
	// B is the break-even interval (seconds) the moments are measured
	// against: mu accumulates y·1{y <= B}, q counts 1{y > B}.
	B float64
	// Forgetting is the exponential decay per observation in (0, 1];
	// 1 (default) keeps the plain running average.
	Forgetting float64
	// MinObservations is the warmup: estimates are not trusted (and
	// re-tunes are suppressed) before this many stops. Default 50.
	MinObservations int
	// Drift parameterizes the CUSUM detector on the capped stop length
	// min(y, B); the zero value takes the DriftConfig defaults.
	Drift DriftConfig
}

func (c *StreamConfig) fill() error {
	if c.B <= 0 || math.IsNaN(c.B) || math.IsInf(c.B, 0) {
		return fmt.Errorf("%w: B = %v", ErrConfig, c.B)
	}
	if c.Forgetting == 0 {
		c.Forgetting = 1
	}
	if c.Forgetting <= 0 || c.Forgetting > 1 {
		return fmt.Errorf("%w: forgetting %v", ErrConfig, c.Forgetting)
	}
	if c.MinObservations == 0 {
		c.MinObservations = 50
	}
	if c.MinObservations < 1 {
		return fmt.Errorf("%w: min observations %d", ErrConfig, c.MinObservations)
	}
	return c.Drift.fill()
}

// TrackerState is the serializable state of a Tracker: the
// exponentially-weighted sufficient statistics plus the CUSUM detector
// internals. It is what idled's state-plane snapshot carries per area,
// so a restored replica resumes the stream exactly where the donor
// left off.
type TrackerState struct {
	// Seen counts observations since the tracker (or its area's
	// break-even interval) was reset.
	Seen int64 `json:"seen"`
	// WSum/MuSum/QSum are the weighted sufficient statistics: total
	// weight, sum of y·1{y <= B}, and count of 1{y > B}.
	WSum  float64 `json:"w_sum"`
	MuSum float64 `json:"mu_sum"`
	QSum  float64 `json:"q_sum"`
	// Detector is the CUSUM state.
	Detector DetectorState `json:"detector"`
}

// Validate rejects non-finite or structurally impossible state, so a
// corrupted snapshot fails closed instead of poisoning the stream.
func (s TrackerState) Validate() error {
	for _, v := range []float64{s.WSum, s.MuSum, s.QSum} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("%w: tracker sums (%v, %v, %v)", ErrConfig, s.WSum, s.MuSum, s.QSum)
		}
	}
	if s.Seen < 0 {
		return fmt.Errorf("%w: tracker seen %d", ErrConfig, s.Seen)
	}
	if s.Seen == 0 && s.WSum != 0 {
		return fmt.Errorf("%w: tracker weight %v with no observations", ErrConfig, s.WSum)
	}
	return s.Detector.Validate()
}

// DetectorState is the serializable CUSUM detector state.
type DetectorState struct {
	N          int     `json:"n"`
	Mean       float64 `json:"mean"`
	M2         float64 `json:"m2"`
	BaselineN  int     `json:"baseline_n"`
	SPos       float64 `json:"s_pos"`
	SNeg       float64 `json:"s_neg"`
	Monitoring bool    `json:"monitoring"`
}

// Validate rejects non-finite or structurally impossible state.
func (s DetectorState) Validate() error {
	for _, v := range []float64{s.Mean, s.M2, s.SPos, s.SNeg} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: detector value %v", ErrConfig, v)
		}
	}
	if s.N < 0 || s.BaselineN < 0 || s.M2 < 0 || s.SPos < 0 || s.SNeg < 0 {
		return fmt.Errorf("%w: detector state %+v", ErrConfig, s)
	}
	if s.Monitoring && s.N < 2 {
		return fmt.Errorf("%w: monitoring with n = %d", ErrConfig, s.N)
	}
	return nil
}

// State exports the detector internals for snapshotting.
func (d *Detector) State() DetectorState {
	return DetectorState{
		N: d.n, Mean: d.mean, M2: d.m2, BaselineN: d.baselineN,
		SPos: d.sPos, SNeg: d.sNeg, Monitoring: d.monitoring,
	}
}

// RestoreState replaces the detector internals from a validated
// snapshot.
func (d *Detector) RestoreState(s DetectorState) error {
	if err := s.Validate(); err != nil {
		return err
	}
	d.n, d.mean, d.m2, d.baselineN = s.N, s.Mean, s.M2, s.BaselineN
	d.sPos, d.sNeg, d.monitoring = s.SPos, s.SNeg, s.Monitoring
	return nil
}

// StepMoments applies one observation to the exponentially-weighted
// sufficient statistics and returns the successors. It is the pure
// transition function of the observe stream: idled's audit replay
// re-derives each recorded observe transition with it and requires
// bit-identical results, the same way decide records replay through
// their engine.
func StepMoments(wSum, muSum, qSum, forgetting, b, y float64) (w2, mu2, q2 float64) {
	w2 = forgetting*wSum + 1
	mu2 = forgetting * muSum
	q2 = forgetting * qSum
	if y > b {
		q2++
	} else {
		mu2 += y
	}
	return w2, mu2, q2
}

// Tracker is the streaming per-area estimator: exponentially-weighted
// constrained moments plus a CUSUM drift detector on the capped stop
// length. It is deliberately dumb about concurrency — the caller
// (idled's per-area observer) serializes Observe calls, so the stream
// stays a deterministic function of the observation sequence.
type Tracker struct {
	cfg   StreamConfig
	state TrackerState
	det   *Detector
}

// NewTracker builds a tracker.
func NewTracker(cfg StreamConfig) (*Tracker, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	det, err := NewDetector(cfg.Drift)
	if err != nil {
		return nil, err
	}
	return &Tracker{cfg: cfg, det: det}, nil
}

// B returns the break-even interval the moments are measured against.
func (t *Tracker) B() float64 { return t.cfg.B }

// Seen returns the number of observations absorbed.
func (t *Tracker) Seen() int64 { return t.state.Seen }

// Warm reports whether the estimates have absorbed MinObservations.
func (t *Tracker) Warm() bool { return t.state.Seen >= int64(t.cfg.MinObservations) }

// Stats returns the current constrained estimates (zero before any
// observation). The pair is feasible by construction: every counted
// short stop is at most B, so mu <= B·(1-q) always holds.
func (t *Tracker) Stats() skirental.Stats {
	if t.state.WSum == 0 {
		return skirental.Stats{}
	}
	return skirental.Stats{
		MuBMinus: t.state.MuSum / t.state.WSum,
		QBPlus:   t.state.QSum / t.state.WSum,
	}
}

// State exports the tracker for snapshotting.
func (t *Tracker) State() TrackerState {
	s := t.state
	s.Detector = t.det.State()
	return s
}

// RestoreState replaces the tracker state from a validated snapshot.
func (t *Tracker) RestoreState(s TrackerState) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if err := t.det.RestoreState(s.Detector); err != nil {
		return err
	}
	s.Detector = DetectorState{}
	t.state = s
	return nil
}

// StreamUpdate reports the outcome of one observation.
type StreamUpdate struct {
	// Seen is the observation's 1-based sequence number.
	Seen int64
	// PrevWSum/PrevMuSum/PrevQSum are the sufficient statistics BEFORE
	// the observation; WSum/MuSum/QSum after. Together with StepMoments
	// they make every transition independently re-derivable from its
	// audit record.
	PrevWSum, PrevMuSum, PrevQSum float64
	WSum, MuSum, QSum             float64
	// Stats are the estimates after the observation.
	Stats skirental.Stats
	// Warm reports whether MinObservations have been absorbed.
	Warm bool
	// Alarm reports a CUSUM drift alarm on this observation. The
	// detector re-baselines itself; resetting the moment estimates is
	// the caller's re-tune decision.
	Alarm bool
}

// Observe absorbs one completed stop of length y (seconds). Invalid
// lengths are rejected without mutating any state.
func (t *Tracker) Observe(y float64) (StreamUpdate, error) {
	if y < 0 || math.IsNaN(y) || math.IsInf(y, 0) {
		return StreamUpdate{}, fmt.Errorf("%w: stop length %v", ErrConfig, y)
	}
	up := StreamUpdate{
		PrevWSum:  t.state.WSum,
		PrevMuSum: t.state.MuSum,
		PrevQSum:  t.state.QSum,
	}
	t.state.WSum, t.state.MuSum, t.state.QSum = StepMoments(
		t.state.WSum, t.state.MuSum, t.state.QSum, t.cfg.Forgetting, t.cfg.B, y)
	t.state.Seen++
	up.Seen = t.state.Seen
	up.WSum, up.MuSum, up.QSum = t.state.WSum, t.state.MuSum, t.state.QSum
	up.Stats = t.Stats()
	up.Warm = t.Warm()
	up.Alarm = t.det.Observe(math.Min(y, t.cfg.B))
	return up, nil
}

// ResetMoments clears the moment estimates (a post-re-tune restart for
// a new regime) while keeping the observation counter monotonic and
// the detector's fresh baseline intact.
func (t *Tracker) ResetMoments() {
	t.state.WSum, t.state.MuSum, t.state.QSum = 0, 0, 0
}
