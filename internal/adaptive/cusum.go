package adaptive

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"math/rand/v2"
	"time"

	"idlereduce/internal/skirental"
)

// DriftConfig parameterizes the two-sided CUSUM drift detector.
type DriftConfig struct {
	// Threshold is the CUSUM alarm level h in standard deviations
	// (typical 5-10; default 8).
	Threshold float64
	// Slack is the allowance k subtracted per step (default 0.5): drifts
	// smaller than ~2k standard deviations are ignored.
	Slack float64
	// Warmup is the number of observations used to baseline the mean and
	// variance before monitoring starts (default 30).
	Warmup int
}

func (c *DriftConfig) fill() error {
	if c.Threshold == 0 {
		c.Threshold = 10
	}
	if c.Slack == 0 {
		c.Slack = 0.5
	}
	if c.Warmup == 0 {
		c.Warmup = 50
	}
	if c.Threshold <= 0 || c.Slack <= 0 || c.Warmup < 2 {
		return fmt.Errorf("%w: drift config %+v", ErrConfig, *c)
	}
	return nil
}

// Detector is a two-sided CUSUM on standardized observations. It
// baselines mean and variance during warmup, then accumulates positive
// and negative deviation sums; crossing the threshold signals a drift
// and re-baselines.
//
// The adaptive policy monitors the capped stop length min(y, B): the
// statistic whose distribution the vertex selection depends on. A long
// quiet commute turning into gridlock (or vice versa) trips the detector
// within tens of stops, much faster than exponential forgetting washes
// out the stale history.
type Detector struct {
	cfg DriftConfig

	n         int
	mean      float64
	m2        float64 // sum of squared deviations (Welford)
	baselineN int

	sPos, sNeg float64
	monitoring bool
}

// NewDetector builds a CUSUM detector.
func NewDetector(cfg DriftConfig) (*Detector, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// Observe feeds one observation and reports whether a drift alarm fired.
// After an alarm the detector re-baselines automatically.
func (d *Detector) Observe(v float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return false
	}
	if !d.monitoring {
		// Welford baseline accumulation.
		d.n++
		delta := v - d.mean
		d.mean += delta / float64(d.n)
		d.m2 += delta * (v - d.mean)
		if d.n >= d.cfg.Warmup {
			d.monitoring = true
			d.baselineN = d.n
		}
		return false
	}
	sd := math.Sqrt(d.m2 / float64(d.n-1))
	if sd <= 1e-12 {
		sd = 1e-12
	}
	z := (v - d.mean) / sd
	d.sPos = math.Max(0, d.sPos+z-d.cfg.Slack)
	d.sNeg = math.Max(0, d.sNeg-z-d.cfg.Slack)
	if d.sPos > d.cfg.Threshold || d.sNeg > d.cfg.Threshold {
		d.reset()
		return true
	}
	// Keep refining the baseline: a frozen small-sample estimate biases
	// the standardized residuals and causes false alarms. The refinement
	// absorbs true drifts only slowly (the baseline already holds
	// Warmup+ observations), so detection speed is barely affected.
	d.n++
	delta := v - d.mean
	d.mean += delta / float64(d.n)
	d.m2 += delta * (v - d.mean)
	return false
}

// Monitoring reports whether the warmup baseline is complete.
func (d *Detector) Monitoring() bool { return d.monitoring }

// reset clears all state for a fresh baseline.
func (d *Detector) reset() {
	d.n, d.mean, d.m2 = 0, 0, 0
	d.sPos, d.sNeg = 0, 0
	d.monitoring = false
}

// WithDriftDetection wraps the adaptive policy with a CUSUM detector on
// the capped stop length: when a drift fires, the policy's statistics
// are reset (back to N-Rand warmup) so the new regime is learned from
// scratch instead of being averaged into stale history.
type DriftPolicy struct {
	*Policy
	det *Detector
	// Drifts counts alarms so far.
	Drifts int
}

// NewWithDriftDetection builds the drift-resetting adaptive policy.
func NewWithDriftDetection(cfg Config, drift DriftConfig) (*DriftPolicy, error) {
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	det, err := NewDetector(drift)
	if err != nil {
		return nil, err
	}
	return &DriftPolicy{Policy: p, det: det}, nil
}

// Instrument attaches the context's observability sink to the wrapped
// policy (CUSUM alarms are counted under adaptive_cusum_alarm_total,
// with the alarm time exposed as gauges and a structured event).
// Returns dp for chaining.
func (dp *DriftPolicy) Instrument(ctx context.Context) *DriftPolicy {
	dp.Policy.Instrument(ctx)
	return dp
}

// Observe records the stop, fires the detector, and resets the estimator
// on drift.
func (dp *DriftPolicy) Observe(y float64) error {
	if err := dp.Policy.Observe(y); err != nil {
		return err
	}
	capped := math.Min(y, dp.Policy.B())
	if dp.det.Observe(capped) {
		dp.Drifts++
		atStop := dp.Policy.seen
		rec := dp.Policy.rec
		// Restart estimation for the new regime.
		fresh, err := New(dp.Policy.cfg)
		if err != nil {
			return err
		}
		*dp.Policy = *fresh
		dp.Policy.rec = rec // the sink survives the regime reset
		if rec.On() {
			rec.Add("adaptive_cusum_alarm_total", 1)
			rec.Set("adaptive_last_alarm_stop", float64(atStop))
			rec.Set("adaptive_last_alarm_unix_ms", float64(time.Now().UnixMilli()))
			rec.Event("adaptive.cusum_alarm",
				slog.Int("stop", atStop),
				slog.Int("alarms", dp.Drifts))
		}
	}
	return nil
}

// Run plays the drift-resetting policy over a stop sequence (decision
// before observation, as in Policy.Run).
func (dp *DriftPolicy) Run(stops []float64, rng *rand.Rand) (online, offline float64, err error) {
	for _, y := range stops {
		x := dp.Threshold(rng)
		online += skirental.OnlineCost(x, y, dp.B())
		offline += skirental.OfflineCost(y, dp.B())
		if err := dp.Observe(y); err != nil {
			return online, offline, err
		}
	}
	return online, offline, nil
}
