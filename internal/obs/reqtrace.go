package obs

import (
	"context"
	"sync"
	"time"
)

// Tracer emits one JSONL record per finished request span through a
// bounded, non-blocking JSONLWriter. It complements Recorder.StartSpan
// (which feeds aggregate histograms): a Tracer span is request-scoped
// forensics — every record carries the request id, so an operator can
// grep one request's path through middleware, handler and batch
// fan-out. A nil *Tracer (and a nil *Span) is a no-op, so call sites
// need no guards when tracing is disabled.
type Tracer struct {
	w *JSONLWriter
}

// NewTracer wraps a JSONL sink. A nil writer yields a no-op tracer.
func NewTracer(w *JSONLWriter) *Tracer {
	if w == nil {
		return nil
	}
	return &Tracer{w: w}
}

// Dropped reports records lost to the bounded queue.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.w.Dropped()
}

// Flush blocks until every finished span has reached the sink.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	return t.w.Flush()
}

// Close flushes and stops the sink goroutine.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	return t.w.Close()
}

// SpanRecord is the JSONL wire form of one finished span.
type SpanRecord struct {
	// TSUnixMS is the span start time.
	TSUnixMS  int64          `json:"ts_unix_ms"`
	RequestID string         `json:"request_id"`
	Span      string         `json:"span"`
	DurMS     float64        `json:"dur_ms"`
	Attrs     map[string]any `json:"attrs,omitempty"`
}

// Span is one traced operation within a request. Attribute writes are
// mutex-guarded so batch fan-out workers may annotate concurrently.
type Span struct {
	t     *Tracer
	name  string
	reqID string
	start time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// Start opens a span and returns a derived context carrying it. On a
// nil tracer the context is returned unchanged with a nil span.
func (t *Tracer) Start(ctx context.Context, name, requestID string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sp := &Span{t: t, name: name, reqID: requestID, start: time.Now()}
	return ContextWithSpan(ctx, sp), sp
}

// Child opens a sub-span inheriting the request id (e.g. one per batch
// item under the request's HTTP span).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, reqID: s.reqID, start: time.Now()}
}

// Set records one attribute on the span.
func (s *Span) Set(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 8)
	}
	s.attrs[key] = v
}

// End finishes the span and enqueues its record. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		TSUnixMS:  s.start.UnixMilli(),
		RequestID: s.reqID,
		Span:      s.name,
		DurMS:     float64(time.Since(s.start)) / float64(time.Millisecond),
		Attrs:     s.attrs,
	}
	s.mu.Unlock()
	s.t.w.Write(rec)
}

// spanKey and reqIDKey key the span and the request id in a context.
// The request id travels separately so it stays available (for audit
// records and response headers) when tracing is disabled.
type (
	spanKey  struct{}
	reqIDKey struct{}
)

// ContextWithSpan returns ctx carrying sp.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFrom extracts the current span; nil when absent, and every Span
// method is nil-safe, so callers can use the result unconditionally.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// WithRequestID returns ctx carrying the request correlation id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom extracts the request id ("" when absent).
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}
