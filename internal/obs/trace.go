package obs

import (
	"context"
	"io"
	"log/slog"
	"time"
)

// Recorder is the run-scoped sink instrumented packages write to. It
// bundles a metrics registry with an optional structured event log
// (log/slog, JSON lines). A nil *Recorder is the no-op sink: every
// method is nil-receiver-safe, so call sites need no guards and
// uninstrumented runs pay only a pointer test.
type Recorder struct {
	reg   *Registry
	log   *slog.Logger
	runID string
	start time.Time
}

// NewRecorder builds a recorder for one run. reg nil allocates a fresh
// registry; logw nil disables structured logging (metrics only).
func NewRecorder(runID string, reg *Registry, logw io.Writer) *Recorder {
	if reg == nil {
		reg = NewRegistry()
	}
	r := &Recorder{reg: reg, runID: runID, start: time.Now()}
	if logw != nil {
		r.log = slog.New(slog.NewJSONHandler(logw, nil)).With(slog.String("run", runID))
	}
	return r
}

// On reports whether the recorder is live. Call sites use it to skip
// building metric names or attributes on the fast path.
func (r *Recorder) On() bool { return r != nil }

// Registry returns the underlying registry (nil for the no-op sink).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// RunID returns the run label ("" for the no-op sink).
func (r *Recorder) RunID() string {
	if r == nil {
		return ""
	}
	return r.runID
}

// Snapshot captures the registry state stamped with the recorder's run
// ID. A nil recorder yields an empty snapshot.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := r.reg.Snapshot()
	s.RunID = r.runID
	return s
}

// Add increments the named counter.
func (r *Recorder) Add(name string, n int64) {
	if r == nil {
		return
	}
	r.reg.Counter(name).Add(n)
}

// Set stores the named gauge.
func (r *Recorder) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.reg.Gauge(name).Set(v)
}

// Observe records one histogram observation.
func (r *Recorder) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.reg.Histogram(name).Observe(v)
}

// Event emits a structured log record (with wall-clock timestamp from
// slog) and counts it under obs_events_total.
func (r *Recorder) Event(name string, attrs ...slog.Attr) {
	if r == nil {
		return
	}
	r.reg.Counter(L("obs_events_total", "event", name)).Inc()
	if r.log != nil {
		r.log.LogAttrs(context.Background(), slog.LevelInfo, name, attrs...)
	}
}

// StartSpan opens a named span and returns its closer. Closing records
// the duration in the span_ms{span=...} histogram and, when structured
// logging is enabled, emits one record carrying the duration and the
// caller's attributes.
func (r *Recorder) StartSpan(name string, attrs ...slog.Attr) func() {
	if r == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		r.reg.Histogram(L("span_ms", "span", name)).Observe(float64(d) / float64(time.Millisecond))
		if r.log != nil {
			all := append([]slog.Attr{
				slog.String("span", name),
				slog.Duration("dur", d),
			}, attrs...)
			r.log.LogAttrs(context.Background(), slog.LevelInfo, "span", all...)
		}
	}
}

// ctxKey keys the recorder in a context.
type ctxKey struct{}

// WithRecorder returns ctx carrying r.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext extracts the recorder from ctx; nil (the no-op sink)
// when absent, so callers can use the result unconditionally.
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
