package obs

import (
	"context"
	"math"
	"sync"
	"time"
)

// Probe kinds: a counter probe reads a cumulative value (History
// derives per-second rates from consecutive samples); a gauge probe
// reads an instantaneous value reported as-is.
const (
	ProbeCounter = "counter"
	ProbeGauge   = "gauge"
)

// Probe is one sampled series: a name, a kind, and a value source.
// Sources are plain funcs so a probe can read a registry metric, a
// quantile, or anything else without coupling the sampler to metric
// internals.
type Probe struct {
	Name string
	Kind string
	F    func() float64
}

// CounterSumProbe probes the sum of every registry counter whose base
// name (label block stripped) is base — e.g. http_requests_total
// across all route/code combinations.
func CounterSumProbe(reg *Registry, name, base string) Probe {
	return Probe{Name: name, Kind: ProbeCounter, F: func() float64 {
		return float64(reg.SumCounterValues(base))
	}}
}

// GaugeProbe probes one registry gauge by exact (labelled) name.
func GaugeProbe(reg *Registry, name, gauge string) Probe {
	return Probe{Name: name, Kind: ProbeGauge, F: reg.Gauge(gauge).Value}
}

// HistogramQuantileProbe probes the running q-quantile of one registry
// histogram by exact (labelled) name. The quantile is cumulative since
// boot; sampling it over time yields its trajectory.
func HistogramQuantileProbe(reg *Registry, name, hist string, q float64) Probe {
	h := reg.Histogram(hist)
	return Probe{Name: name, Kind: ProbeGauge, F: func() float64 {
		return h.Quantile(q)
	}}
}

// HistogramMeanProbe probes the running mean of one registry histogram
// by exact (labelled) name (0 before the first observation). Like the
// quantile probe it is cumulative since boot; its trajectory shows the
// mean drifting.
func HistogramMeanProbe(reg *Registry, name, hist string) Probe {
	h := reg.Histogram(hist)
	return Probe{Name: name, Kind: ProbeGauge, F: func() float64 {
		n := h.Count()
		if n == 0 {
			return 0
		}
		return h.Sum() / float64(n)
	}}
}

// Sampler snapshots a fixed set of probes into per-series ring
// buffers at an interval: fixed memory (window × probes float64s)
// regardless of uptime. Safe for concurrent Sample/History; the
// typical deployment runs one Run goroutine and serves History from
// HTTP handlers.
type Sampler struct {
	interval time.Duration
	window   int
	probes   []Probe

	mu    sync.Mutex
	times []int64     // unix ms, ring
	vals  [][]float64 // [probe][ring]
	n     int         // total samples ever taken
}

// NewSampler builds a sampler. interval <= 0 defaults to 1s; window
// <= 0 defaults to 120 samples (two minutes at the default interval).
func NewSampler(interval time.Duration, window int, probes ...Probe) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	if window <= 0 {
		window = 120
	}
	s := &Sampler{
		interval: interval,
		window:   window,
		probes:   probes,
		times:    make([]int64, window),
		vals:     make([][]float64, len(probes)),
	}
	for i := range s.vals {
		s.vals[i] = make([]float64, window)
	}
	return s
}

// Sample takes one sample now.
func (s *Sampler) Sample() { s.sampleAt(time.Now()) }

// sampleAt records one sample at an explicit time (tests pin the
// clock to hand-compute rates). Non-finite probe values are stored as
// zero so the history stays JSON-encodable.
func (s *Sampler) sampleAt(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.n % s.window
	s.times[idx] = t.UnixMilli()
	for i, p := range s.probes {
		v := p.F()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		s.vals[i][idx] = v
	}
	s.n++
}

// Run samples on the configured interval until ctx is cancelled.
func (s *Sampler) Run(ctx context.Context) {
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			s.Sample()
		}
	}
}

// History is the wire form of a sampler's retained window (the GET
// /v1/history payload): sample timestamps oldest→newest plus one
// series per probe. Counter probes are exported as kind "rate" with
// per-interval per-second deltas; gauge probes carry their raw
// sampled values.
type History struct {
	IntervalMS  int64           `json:"interval_ms"`
	Window      int             `json:"window"`
	Samples     int             `json:"samples"`
	TimesUnixMS []int64         `json:"times_unix_ms"`
	Series      []HistorySeries `json:"series"`
}

// HistorySeries is one probe's retained trajectory.
type HistorySeries struct {
	Name string `json:"name"`
	// Kind is "rate" (derived from a cumulative counter) or "gauge".
	Kind   string    `json:"kind"`
	Points []float64 `json:"points"`
	// Last is the newest point.
	Last float64 `json:"last"`
	// RatePerSec is the windowed rate over the whole retained span
	// (rate series only): (newest − oldest cumulative) / elapsed.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
}

// Lookup returns the named series.
func (h History) Lookup(name string) (HistorySeries, bool) {
	for _, s := range h.Series {
		if s.Name == name {
			return s, true
		}
	}
	return HistorySeries{}, false
}

// History renders the retained window. With zero samples it returns
// an empty (but well-formed) payload.
func (s *Sampler) History() History {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.n
	if n > s.window {
		n = s.window
	}
	h := History{
		IntervalMS:  s.interval.Milliseconds(),
		Window:      s.window,
		Samples:     n,
		TimesUnixMS: make([]int64, n),
		Series:      make([]HistorySeries, 0, len(s.probes)),
	}
	// Oldest retained sample: in a wrapped ring the write index is
	// also the oldest slot.
	start := 0
	if s.n > s.window {
		start = s.n % s.window
	}
	at := func(ring []float64, i int) float64 { return ring[(start+i)%s.window] }
	for i := 0; i < n; i++ {
		h.TimesUnixMS[i] = s.times[(start+i)%s.window]
	}
	for pi, p := range s.probes {
		series := HistorySeries{Name: p.Name, Kind: ProbeGauge}
		points := make([]float64, n)
		switch p.Kind {
		case ProbeCounter:
			series.Kind = "rate"
			// points[i] is the per-second rate over (t[i-1], t[i]];
			// the first retained sample has no predecessor, so 0.
			for i := 1; i < n; i++ {
				dv := at(s.vals[pi], i) - at(s.vals[pi], i-1)
				dt := float64(h.TimesUnixMS[i]-h.TimesUnixMS[i-1]) / 1000
				if dv > 0 && dt > 0 {
					points[i] = dv / dt
				}
			}
			if n >= 2 {
				dv := at(s.vals[pi], n-1) - at(s.vals[pi], 0)
				dt := float64(h.TimesUnixMS[n-1]-h.TimesUnixMS[0]) / 1000
				if dv > 0 && dt > 0 {
					series.RatePerSec = dv / dt
				}
			}
		default:
			for i := 0; i < n; i++ {
				points[i] = at(s.vals[pi], i)
			}
		}
		series.Points = points
		if n > 0 {
			series.Last = points[n-1]
		}
		h.Series = append(h.Series, series)
	}
	return h
}
