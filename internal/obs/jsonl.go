package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// JSONLWriter is a bounded, non-blocking JSON-lines sink: callers
// marshal-and-enqueue, a single background goroutine does the actual
// writing, and each record goes out as exactly one Write call, so a
// record is never split across an underlying rotation boundary. When
// the queue is full the record is dropped and counted instead of
// blocking the caller — on a serving hot path, losing a trace line
// beats adding latency. A nil *JSONLWriter is a no-op sink.
type JSONLWriter struct {
	ch        chan jsonlMsg
	done      chan struct{}
	dropped   atomic.Int64
	written   atomic.Int64
	closeOnce sync.Once
	closeErr  error
}

// jsonlMsg is one queue entry: either a record line or a flush/stop
// barrier.
type jsonlMsg struct {
	line    []byte
	barrier chan error
	stop    bool
}

// NewJSONLWriter starts the writer goroutine over w with the given
// queue capacity (<= 0 means 1024).
func NewJSONLWriter(w io.Writer, queue int) *JSONLWriter {
	if queue <= 0 {
		queue = 1024
	}
	j := &JSONLWriter{
		ch:   make(chan jsonlMsg, queue),
		done: make(chan struct{}),
	}
	go func() {
		defer close(j.done)
		for msg := range j.ch {
			if msg.barrier != nil {
				msg.barrier <- flushWriter(w)
				if msg.stop {
					return
				}
				continue
			}
			if _, err := w.Write(msg.line); err != nil {
				j.dropped.Add(1)
			} else {
				j.written.Add(1)
			}
		}
	}()
	return j
}

// flushWriter pushes buffered data through when the underlying writer
// supports it (bufio.Writer's Flush, or Sync on files and
// RotatingFile).
func flushWriter(w io.Writer) error {
	switch f := w.(type) {
	case interface{ Flush() error }:
		return f.Flush()
	case interface{ Sync() error }:
		return f.Sync()
	}
	return nil
}

// Write marshals v and enqueues it as one line. It never blocks: a
// full queue, a marshal failure, or a closed writer counts the record
// as dropped.
func (j *JSONLWriter) Write(v any) {
	if j == nil {
		return
	}
	select {
	case <-j.done:
		j.dropped.Add(1)
		return
	default:
	}
	line, err := json.Marshal(v)
	if err != nil {
		j.dropped.Add(1)
		return
	}
	line = append(line, '\n')
	select {
	case j.ch <- jsonlMsg{line: line}:
	default:
		j.dropped.Add(1)
	}
}

// Flush blocks until every record enqueued before the call has been
// written through to the underlying writer. Safe after Close.
func (j *JSONLWriter) Flush() error {
	if j == nil {
		return nil
	}
	b := make(chan error, 1)
	select {
	case j.ch <- jsonlMsg{barrier: b}:
		select {
		case err := <-b:
			return err
		case <-j.done:
			return nil
		}
	case <-j.done:
		return nil
	}
}

// Close drains the queue, flushes, and stops the background goroutine.
// Records written after Close count as dropped. Idempotent.
func (j *JSONLWriter) Close() error {
	if j == nil {
		return nil
	}
	j.closeOnce.Do(func() {
		b := make(chan error, 1)
		select {
		case j.ch <- jsonlMsg{barrier: b, stop: true}:
			select {
			case j.closeErr = <-b:
			case <-j.done:
			}
		case <-j.done:
		}
	})
	<-j.done
	return j.closeErr
}

// Dropped returns how many records were lost to the bounded queue,
// marshal failures, or write errors.
func (j *JSONLWriter) Dropped() int64 {
	if j == nil {
		return 0
	}
	return j.dropped.Load()
}

// Written returns how many records reached the underlying writer.
func (j *JSONLWriter) Written() int64 {
	if j == nil {
		return 0
	}
	return j.written.Load()
}

// RotatingFile is an io.Writer over a file that rotates by size: when
// a write would push the file past MaxBytes, the current file is
// renamed to <path>.1 (replacing any previous rotation) and a fresh
// file is opened. One rotation level bounds disk use at ~2×MaxBytes
// while keeping a full window of recent records. Callers must keep
// each logical record inside one Write call for rotation to preserve
// record boundaries — JSONLWriter does.
type RotatingFile struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	size     int64
	rotated  int64
}

// OpenRotatingFile opens (appending) or creates path with the given
// rotation threshold (<= 0 means 64 MiB).
func OpenRotatingFile(path string, maxBytes int64) (*RotatingFile, error) {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open rotating file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: stat rotating file: %w", err)
	}
	return &RotatingFile{path: path, maxBytes: maxBytes, f: f, size: st.Size()}, nil
}

// Write appends p, rotating first when the file would exceed the
// threshold.
func (r *RotatingFile) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.size > 0 && r.size+int64(len(p)) > r.maxBytes {
		if err := r.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n, err := r.f.Write(p)
	r.size += int64(n)
	return n, err
}

// rotateLocked renames the live file to <path>.1 and reopens fresh.
func (r *RotatingFile) rotateLocked() error {
	if err := r.f.Close(); err != nil {
		return fmt.Errorf("obs: rotate close: %w", err)
	}
	if err := os.Rename(r.path, r.path+".1"); err != nil {
		return fmt.Errorf("obs: rotate rename: %w", err)
	}
	f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: rotate reopen: %w", err)
	}
	r.f = f
	r.size = 0
	r.rotated++
	return nil
}

// Rotations returns how many times the file has rotated.
func (r *RotatingFile) Rotations() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rotated
}

// Sync flushes the live file to stable storage.
func (r *RotatingFile) Sync() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.f.Sync()
}

// Close closes the live file.
func (r *RotatingFile) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.f.Close()
}
