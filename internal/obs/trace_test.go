package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNilRecorderIsSafe exercises every Recorder method on the no-op
// sink: this is the contract that lets instrumented packages skip
// guards entirely.
func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.On() {
		t.Error("nil recorder reports On")
	}
	r.Add("c", 1)
	r.Set("g", 1)
	r.Observe("h", 1)
	r.Event("e")
	r.StartSpan("s")()
	if r.Registry() != nil {
		t.Error("nil recorder registry")
	}
	if r.RunID() != "" {
		t.Error("nil recorder run id")
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context should yield nil recorder")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Error("nil context should yield nil recorder")
	}
	rec := NewRecorder("t", nil, nil)
	ctx := WithRecorder(context.Background(), rec)
	if got := FromContext(ctx); got != rec {
		t.Error("recorder did not round-trip")
	}
	if !rec.On() {
		t.Error("live recorder reports Off")
	}
}

func TestRecorderMetricsAndEvents(t *testing.T) {
	var logBuf bytes.Buffer
	rec := NewRecorder("run-42", nil, &logBuf)
	rec.Add("stops_total", 3)
	rec.Set("cr", 1.2)
	rec.Observe("cents", 10)
	rec.Event("alarm", slog.Int("stop", 7))

	reg := rec.Registry()
	if got := reg.Counter("stops_total").Value(); got != 3 {
		t.Errorf("counter %d", got)
	}
	if got := reg.Counter(L("obs_events_total", "event", "alarm")).Value(); got != 1 {
		t.Errorf("event counter %d", got)
	}
	// The structured log line is JSON with run id, message and attrs.
	var line map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, logBuf.String())
	}
	if line["run"] != "run-42" || line["msg"] != "alarm" || line["stop"] != float64(7) {
		t.Errorf("log line %v", line)
	}
}

func TestSpanRecordsDurationHistogram(t *testing.T) {
	var logBuf bytes.Buffer
	rec := NewRecorder("r", nil, &logBuf)
	end := rec.StartSpan("simulate", slog.Int("stops", 5))
	end()
	h := rec.Registry().Histogram(L("span_ms", "span", "simulate"))
	if h.Count() != 1 {
		t.Fatalf("span histogram count %d", h.Count())
	}
	if !strings.Contains(logBuf.String(), `"span":"simulate"`) {
		t.Errorf("span log missing:\n%s", logBuf.String())
	}
}

func TestProfilesStartStop(t *testing.T) {
	dir := t.TempDir()
	p := Profiles{
		CPUFile:   filepath.Join(dir, "cpu.pprof"),
		MemFile:   filepath.Join(dir, "mem.pprof"),
		TraceFile: filepath.Join(dir, "trace.out"),
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0.0
	for i := 0; i < 1_000_00; i++ {
		x += float64(i % 7)
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{p.CPUFile, p.MemFile, p.TraceFile} {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
	// Nothing enabled: Start is a no-op and stop must be callable.
	stop2, err := Profiles{}.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop2(); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesBadPath(t *testing.T) {
	if _, err := (Profiles{CPUFile: "/nonexistent-dir/x.pprof"}).Start(); err == nil {
		t.Error("want error for unwritable cpu profile path")
	}
}
