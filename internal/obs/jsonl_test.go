package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestJSONLWriterWritesLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONLWriter(&buf, 16)
	for i := 0; i < 5; i++ {
		j.Write(map[string]int{"i": i})
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5: %q", len(lines), buf.String())
	}
	for i, line := range lines {
		var m map[string]int
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		if m["i"] != i {
			t.Errorf("line %d = %v, want i=%d (order must be preserved)", i, m, i)
		}
	}
	if j.Written() != 5 || j.Dropped() != 0 {
		t.Errorf("written %d dropped %d, want 5/0", j.Written(), j.Dropped())
	}
}

// blockingWriter blocks every Write until released, so the queue can
// be filled deterministically.
type blockingWriter struct {
	entered chan struct{}
	release chan struct{}
	mu      sync.Mutex
	buf     bytes.Buffer
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	w.entered <- struct{}{}
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func TestJSONLWriterLossyWhenFull(t *testing.T) {
	bw := &blockingWriter{entered: make(chan struct{}, 64), release: make(chan struct{})}
	j := NewJSONLWriter(bw, 2)
	j.Write("a") // picked up by the goroutine, blocks in Write
	<-bw.entered
	j.Write("b") // queued
	j.Write("c") // queued (capacity 2)
	j.Write("d") // dropped
	j.Write("e") // dropped
	if got := j.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
	close(bw.release)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := j.Written(); got != 3 {
		t.Errorf("Written = %d, want 3", got)
	}
}

func TestJSONLWriterFlushAndWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	j := NewJSONLWriter(w, 16)
	j.Write("x")
	if err := j.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != `"x"` {
		t.Errorf("after Flush buffer = %q, want \"x\" flushed through bufio", got)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	j.Write("y")
	if err := j.Flush(); err != nil {
		t.Fatalf("Flush after Close: %v", err)
	}
	if j.Dropped() != 1 {
		t.Errorf("write after close not counted dropped: %d", j.Dropped())
	}
	var nilJ *JSONLWriter
	nilJ.Write("z")
	if err := nilJ.Flush(); err != nil {
		t.Errorf("nil Flush: %v", err)
	}
	if err := nilJ.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestJSONLWriterUnmarshalableDropped(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONLWriter(&buf, 4)
	j.Write(func() {}) // not JSON-marshalable
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Dropped() != 1 || j.Written() != 0 {
		t.Errorf("dropped %d written %d, want 1/0", j.Dropped(), j.Written())
	}
}

func TestRotatingFileRotatesBySize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	rf, err := OpenRotatingFile(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	line := []byte(fmt.Sprintf("%s\n", strings.Repeat("x", 39))) // 40 bytes
	for i := 0; i < 5; i++ {                                     // 200 bytes total
		if _, err := rf.Write(line); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	if rot := rf.Rotations(); rot != 2 {
		t.Errorf("Rotations = %d, want 2", rot)
	}
	live, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("rotated file missing: %v", err)
	}
	// Every line in both files must be intact (no mid-record splits).
	for _, data := range [][]byte{live, old} {
		for _, l := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			if len(l) != 39 {
				t.Errorf("line length %d, want 39 (record split across rotation)", len(l))
			}
		}
	}
	if got := len(live) + len(old); got > 200 {
		t.Errorf("retained %d bytes, want <= 200", got)
	}
}

func TestJSONLWriterOverRotatingFileKeepsRecordsIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.jsonl")
	rf, err := OpenRotatingFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJSONLWriter(rf, 64)
	for i := 0; i < 20; i++ {
		j.Write(map[string]any{"seq": i, "pad": strings.Repeat("p", 20)})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{path, path + ".1"} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		for _, l := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			var m map[string]any
			if err := json.Unmarshal([]byte(l), &m); err != nil {
				t.Errorf("%s: corrupt line %q: %v", p, l, err)
			}
		}
	}
}
