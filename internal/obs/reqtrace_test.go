package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func decodeSpans(t *testing.T, buf *bytes.Buffer) []SpanRecord {
	t.Helper()
	var out []SpanRecord
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	return out
}

func TestTracerEmitsSpanRecords(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewJSONLWriter(&buf, 16))
	ctx, sp := tr.Start(context.Background(), "http_request", "req-1")
	sp.Set("route", "decide")

	if got := SpanFrom(ctx); got != sp {
		t.Fatal("SpanFrom did not return the started span")
	}
	child := sp.Child("decide_item")
	child.Set("index", 3)
	child.End()
	sp.Set("code", 200)
	sp.End()
	sp.End() // idempotent
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	recs := decodeSpans(t, &buf)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (child then parent)", len(recs))
	}
	if recs[0].Span != "decide_item" || recs[0].RequestID != "req-1" {
		t.Errorf("child record = %+v", recs[0])
	}
	if recs[0].Attrs["index"] != float64(3) {
		t.Errorf("child attrs = %v", recs[0].Attrs)
	}
	if recs[1].Span != "http_request" || recs[1].RequestID != "req-1" {
		t.Errorf("parent record = %+v", recs[1])
	}
	if recs[1].Attrs["route"] != "decide" || recs[1].Attrs["code"] != float64(200) {
		t.Errorf("parent attrs = %v", recs[1].Attrs)
	}
	if recs[1].DurMS < 0 {
		t.Errorf("negative duration %v", recs[1].DurMS)
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "x", "r")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.Set("k", 1)
	sp.End()
	if c := sp.Child("y"); c != nil {
		t.Error("nil span Child returned non-nil")
	}
	if tr.Dropped() != 0 || tr.Flush() != nil || tr.Close() != nil {
		t.Error("nil tracer methods not inert")
	}
	if SpanFrom(ctx) != nil {
		t.Error("context unexpectedly carries a span")
	}
	if NewTracer(nil) != nil {
		t.Error("NewTracer(nil) should be the no-op tracer")
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := WithRequestID(context.Background(), "req-42")
	if got := RequestIDFrom(ctx); got != "req-42" {
		t.Errorf("RequestIDFrom = %q", got)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Errorf("empty context id = %q", got)
	}
}

func TestSpanSetAfterEndIgnored(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewJSONLWriter(&buf, 4))
	_, sp := tr.Start(context.Background(), "s", "r")
	sp.End()
	sp.Set("late", true)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs := decodeSpans(t, &buf)
	if len(recs) != 1 || recs[0].Attrs != nil {
		t.Errorf("late Set leaked into record: %+v", recs)
	}
}
