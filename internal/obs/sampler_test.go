package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// tick advances a fake clock by whole seconds for hand-computed rates.
func tick(base time.Time, sec int) time.Time { return base.Add(time.Duration(sec) * time.Second) }

func TestSamplerWindowedRatesHandComputed(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total")
	s := NewSampler(time.Second, 8, CounterSumProbe(reg, "qps", "reqs_total"))
	base := time.Unix(1700000000, 0)

	s.sampleAt(tick(base, 0)) // cumulative 0
	c.Add(10)
	s.sampleAt(tick(base, 1)) // cumulative 10 -> 10/s over 1s
	c.Add(30)
	s.sampleAt(tick(base, 3)) // cumulative 40 -> 30 over 2s = 15/s

	h := s.History()
	if h.Samples != 3 {
		t.Fatalf("Samples = %d, want 3", h.Samples)
	}
	qps, ok := h.Lookup("qps")
	if !ok {
		t.Fatal("qps series missing")
	}
	want := []float64{0, 10, 15}
	for i, w := range want {
		if math.Abs(qps.Points[i]-w) > 1e-9 {
			t.Errorf("point %d = %v, want %v", i, qps.Points[i], w)
		}
	}
	// Whole-window rate: 40 events over 3 seconds.
	if want := 40.0 / 3.0; math.Abs(qps.RatePerSec-want) > 1e-9 {
		t.Errorf("RatePerSec = %v, want %v", qps.RatePerSec, want)
	}
	if qps.Kind != "rate" {
		t.Errorf("Kind = %q, want rate", qps.Kind)
	}
	if math.Abs(qps.Last-15) > 1e-9 {
		t.Errorf("Last = %v, want 15", qps.Last)
	}
}

func TestSamplerWraparound(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth")
	s := NewSampler(time.Second, 4, GaugeProbe(reg, "depth", "depth"))
	base := time.Unix(1700000000, 0)
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		s.sampleAt(tick(base, i))
	}
	h := s.History()
	if h.Samples != 4 {
		t.Fatalf("Samples = %d, want window 4", h.Samples)
	}
	// The retained window is the last 4 samples, oldest first.
	for i := 1; i < len(h.TimesUnixMS); i++ {
		if h.TimesUnixMS[i] <= h.TimesUnixMS[i-1] {
			t.Errorf("times not ascending: %v", h.TimesUnixMS)
		}
	}
	depth, _ := h.Lookup("depth")
	want := []float64{6, 7, 8, 9}
	for i, w := range want {
		if depth.Points[i] != w {
			t.Errorf("point %d = %v, want %v (ring start mis-tracked)", i, depth.Points[i], w)
		}
	}
}

func TestSamplerZeroSamples(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(time.Second, 4,
		CounterSumProbe(reg, "qps", "reqs_total"),
		GaugeProbe(reg, "depth", "depth"))
	h := s.History()
	if h.Samples != 0 || len(h.TimesUnixMS) != 0 {
		t.Errorf("empty sampler: samples %d times %v", h.Samples, h.TimesUnixMS)
	}
	if len(h.Series) != 2 {
		t.Fatalf("series count %d, want 2 even when empty", len(h.Series))
	}
	for _, se := range h.Series {
		if len(se.Points) != 0 || se.Last != 0 || se.RatePerSec != 0 {
			t.Errorf("empty series %q not zero-valued: %+v", se.Name, se)
		}
	}
	// The empty payload must serialize (no NaNs).
	if _, err := json.Marshal(h); err != nil {
		t.Errorf("marshal empty history: %v", err)
	}
}

func TestSamplerNonFiniteProbeSanitized(t *testing.T) {
	s := NewSampler(time.Second, 4, Probe{Name: "bad", Kind: ProbeGauge, F: func() float64 { return math.NaN() }})
	s.Sample()
	h := s.History()
	bad, _ := h.Lookup("bad")
	if bad.Points[0] != 0 {
		t.Errorf("NaN probe stored as %v, want 0", bad.Points[0])
	}
	if _, err := json.Marshal(h); err != nil {
		t.Errorf("marshal: %v", err)
	}
}

func TestSamplerHistogramQuantileProbe(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_ms")
	for _, v := range []float64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	s := NewSampler(time.Second, 4, HistogramQuantileProbe(reg, "p99", "lat_ms", 0.99))
	s.Sample()
	p99, _ := s.History().Lookup("p99")
	if p99.Last <= 4 || p99.Last > 100 {
		t.Errorf("p99 = %v, want in (4, 100]", p99.Last)
	}
}

// TestSamplerConcurrentSampleAndRead must be race-clean under -race.
func TestSamplerConcurrentSampleAndRead(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total")
	s := NewSampler(time.Millisecond, 16,
		CounterSumProbe(reg, "qps", "reqs_total"),
		HistogramQuantileProbe(reg, "p50", "lat_ms", 0.5))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					s.Sample()
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h := s.History()
					if h.Samples > h.Window {
						t.Error("samples exceed window")
						return
					}
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestRegistrySumCounterValues(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(L("http_requests_total", "route", "decide", "code", "200")).Add(3)
	reg.Counter(L("http_requests_total", "route", "batch", "code", "200")).Add(4)
	reg.Counter("other_total").Add(9)
	if got := reg.SumCounterValues("http_requests_total"); got != 7 {
		t.Errorf("SumCounterValues = %d, want 7", got)
	}
	if got := reg.SumCounterValues("missing"); got != 0 {
		t.Errorf("missing base = %d, want 0", got)
	}
}
