package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe collection of named metrics. The zero
// value is not usable; construct with NewRegistry. Metric accessors
// create on first use, so instrumented code never pre-registers.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{buckets: make(map[int]uint64)}
		r.hists[name] = h
	}
	return h
}

// SumCounterValues totals every live counter whose base name (label
// block stripped) matches base. Unlike Snapshot().SumCounters it
// walks the registry directly, so periodic samplers can read a sum
// without materializing a full snapshot.
func (r *Registry) SumCounterValues(base string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for name, c := range r.counters {
		if baseName(name) == base {
			total += c.Value()
		}
	}
	return total
}

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Add increments by n (negative n is ignored to keep monotonicity).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		val := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histGamma is the geometric bucket growth factor: buckets at gamma^i
// give every quantile a relative error below (gamma-1)/2 ≈ 4%, and the
// whole float range fits in a few hundred sparse buckets.
const histGamma = 1.08

// Histogram is a streaming log-bucketed histogram: constant memory per
// distinct magnitude, quantiles with bounded relative error, safe for
// concurrent Observe.
type Histogram struct {
	mu       sync.Mutex
	count    uint64
	sum      float64
	min, max float64
	zero     uint64         // observations <= 0
	buckets  map[int]uint64 // index i covers (gamma^i, gamma^(i+1)]
}

// bucketIndex maps a positive value to its bucket.
func bucketIndex(v float64) int {
	return int(math.Ceil(math.Log(v)/math.Log(histGamma))) - 1
}

// Observe records one value. NaN and ±Inf are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v <= 0 {
		h.zero++
		return
	}
	h.buckets[bucketIndex(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the running sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]); NaN
// when empty. The estimate is the geometric midpoint of the bucket
// holding the rank, clamped to the observed [min, max].
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank <= h.zero {
		// All non-positive observations collapse into one bucket; min is
		// the best point estimate for it.
		return math.Min(h.min, 0)
	}
	seen := h.zero
	idxs := make([]int, 0, len(h.buckets))
	for i := range h.buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		seen += h.buckets[i]
		if seen >= rank {
			// Geometric midpoint of (gamma^i, gamma^(i+1)].
			v := math.Pow(histGamma, float64(i)+0.5)
			return math.Min(math.Max(v, h.min), h.max)
		}
	}
	return h.max
}

// snapshotLocked renders the histogram's summary under h.mu.
func (h *Histogram) snapshot(name string) HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Name: name, Count: h.count, Sum: h.sum}
	if h.count > 0 {
		s.Min = h.min
		s.Max = h.max
		s.Mean = h.sum / float64(h.count)
		s.P50 = h.quantileLocked(0.50)
		s.P90 = h.quantileLocked(0.90)
		s.P99 = h.quantileLocked(0.99)
	}
	return s
}
