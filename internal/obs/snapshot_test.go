package obs

import "testing"

// The lookup helpers are the bridge between a Snapshot and code that
// reports on it (the idled loadtest, CI bench artifacts): they must
// resolve exact labelled names and aggregate across label sets.

func TestSnapshotCounterValue(t *testing.T) {
	r := NewRegistry()
	r.Counter(L("http_requests_total", "route", "decide", "code", "200")).Add(7)
	r.Counter("plain_total").Add(2)
	s := r.Snapshot()

	if v, ok := s.CounterValue(`http_requests_total{route="decide",code="200"}`); !ok || v != 7 {
		t.Errorf("labelled counter = %d, %v; want 7, true", v, ok)
	}
	if v, ok := s.CounterValue("plain_total"); !ok || v != 2 {
		t.Errorf("plain counter = %d, %v; want 2, true", v, ok)
	}
	if v, ok := s.CounterValue("missing_total"); ok || v != 0 {
		t.Errorf("missing counter = %d, %v; want 0, false", v, ok)
	}
	// Base name alone must NOT match a labelled counter.
	if _, ok := s.CounterValue("http_requests_total"); ok {
		t.Error("base name matched a labelled counter; lookup is exact-name only")
	}
}

func TestSnapshotGaugeValue(t *testing.T) {
	r := NewRegistry()
	r.Gauge("http_inflight_requests").Set(4)
	s := r.Snapshot()

	if v, ok := s.GaugeValue("http_inflight_requests"); !ok || v != 4 {
		t.Errorf("gauge = %g, %v; want 4, true", v, ok)
	}
	if _, ok := s.GaugeValue("absent"); ok {
		t.Error("missing gauge reported present")
	}
}

func TestSnapshotHistogramValue(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("request_ms")
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	s := r.Snapshot()

	hs, ok := s.HistogramValue("request_ms")
	if !ok {
		t.Fatal("histogram not found")
	}
	if hs.Count != 4 || hs.Sum != 10 || hs.Max != 4 {
		t.Errorf("histogram count=%d sum=%g max=%g; want 4, 10, 4", hs.Count, hs.Sum, hs.Max)
	}
	if _, ok := s.HistogramValue("absent"); ok {
		t.Error("missing histogram reported present")
	}
}

func TestSnapshotSumCounters(t *testing.T) {
	r := NewRegistry()
	r.Counter(L("http_requests_total", "route", "decide", "code", "200")).Add(5)
	r.Counter(L("http_requests_total", "route", "batch", "code", "200")).Add(10)
	r.Counter(L("http_requests_total", "route", "decide", "code", "404")).Add(1)
	r.Counter("http_requests_totally_different").Add(99)
	s := r.Snapshot()

	if got := s.SumCounters("http_requests_total"); got != 16 {
		t.Errorf("SumCounters across labels = %d; want 16", got)
	}
	if got := s.SumCounters("absent_total"); got != 0 {
		t.Errorf("SumCounters on absent base = %d; want 0", got)
	}
}

func TestSnapshotTopHistograms(t *testing.T) {
	r := NewRegistry()
	observe := func(area string, vals ...float64) {
		h := r.Histogram(L("decide_area_ms", "area", area))
		for _, v := range vals {
			h.Observe(v)
		}
	}
	observe("chicago", 5, 5, 5)          // sum 15
	observe("atlanta", 1, 2)             // sum 3
	observe("california", 4, 4)          // sum 8
	r.Histogram("other_ms").Observe(100) // different base, excluded
	s := r.Snapshot()

	top := s.TopHistograms("decide_area_ms", 2)
	if len(top) != 2 {
		t.Fatalf("top-2 returned %d entries", len(top))
	}
	if a, _ := LabelValue(top[0].Name, "area"); a != "chicago" {
		t.Errorf("top[0] = %s; want chicago", top[0].Name)
	}
	if a, _ := LabelValue(top[1].Name, "area"); a != "california" {
		t.Errorf("top[1] = %s; want california", top[1].Name)
	}
	// k <= 0 returns every match, still ordered.
	if all := s.TopHistograms("decide_area_ms", 0); len(all) != 3 {
		t.Errorf("k=0 returned %d entries; want 3", len(all))
	}
	if none := s.TopHistograms("absent_ms", 5); len(none) != 0 {
		t.Errorf("absent base returned %d entries", len(none))
	}
}

func TestLabelValue(t *testing.T) {
	name := L("decide_area_ms", "area", "chicago", "shard", "3")
	if v, ok := LabelValue(name, "area"); !ok || v != "chicago" {
		t.Errorf("area = %q, %v", v, ok)
	}
	if v, ok := LabelValue(name, "shard"); !ok || v != "3" {
		t.Errorf("shard = %q, %v", v, ok)
	}
	if _, ok := LabelValue(name, "route"); ok {
		t.Error("absent label reported present")
	}
	if _, ok := LabelValue("plain_total", "area"); ok {
		t.Error("unlabelled name reported a label")
	}
}

func TestSnapshotHelpersOnEmptySnapshot(t *testing.T) {
	var s Snapshot
	if _, ok := s.CounterValue("x"); ok {
		t.Error("empty snapshot counter lookup succeeded")
	}
	if _, ok := s.GaugeValue("x"); ok {
		t.Error("empty snapshot gauge lookup succeeded")
	}
	if _, ok := s.HistogramValue("x"); ok {
		t.Error("empty snapshot histogram lookup succeeded")
	}
	if got := s.SumCounters("x"); got != 0 {
		t.Errorf("empty snapshot SumCounters = %d; want 0", got)
	}
}
