package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is a point-in-time export of a registry, the unit the CLIs
// dump (JSON) and `idlectl stats` renders. Field order is stable and
// names are sorted, so snapshots diff cleanly across runs.
type Snapshot struct {
	// RunID labels the run that produced the snapshot (optional).
	RunID string `json:"run_id,omitempty"`
	// TakenAtUnixMs is the wall-clock capture time.
	TakenAtUnixMs int64 `json:"taken_at_unix_ms"`
	// Counters, Gauges and Histograms are sorted by name.
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// CounterSnapshot is one counter's value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's value.
type GaugeSnapshot struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnapshot summarizes one histogram.
type HistogramSnapshot struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot captures every metric currently in the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{TakenAtUnixMs: time.Now().UnixMilli()}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	for k, v := range counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: k, Value: v.Value()})
	}
	for k, v := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: k, Value: v.Value()})
	}
	for k, v := range hists {
		s.Histograms = append(s.Histograms, v.snapshot(k))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// CounterValue looks up a counter by exact (labelled) name.
func (s Snapshot) CounterValue(name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// GaugeValue looks up a gauge by exact (labelled) name.
func (s Snapshot) GaugeValue(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// HistogramValue looks up a histogram summary by exact (labelled) name.
func (s Snapshot) HistogramValue(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// TopHistograms returns the k histograms whose base name (label block
// stripped) matches base, ordered by total observed time (Sum)
// descending — the attribution view: "which label owns the most
// latency". Ties break by name so the order is deterministic.
func (s Snapshot) TopHistograms(base string, k int) []HistogramSnapshot {
	var out []HistogramSnapshot
	for _, h := range s.Histograms {
		if baseName(h.Name) == base {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sum != out[j].Sum {
			return out[i].Sum > out[j].Sum
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// LabelValue extracts one label's value from a formatted metric name:
// LabelValue(`decide_area_ms{area="chicago"}`, "area") == "chicago".
// The second return is false when the label is absent.
func LabelValue(name, key string) (string, bool) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return "", false
	}
	block := strings.TrimSuffix(name[i+1:], "}")
	for _, pair := range strings.Split(block, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k != key {
			continue
		}
		if uq, err := strconv.Unquote(v); err == nil {
			return uq, true
		}
		return v, true
	}
	return "", false
}

// SumCounters totals every counter whose base name (label block
// stripped) matches base — e.g. SumCounters("http_requests_total")
// across all route/code label combinations.
func (s Snapshot) SumCounters(base string) int64 {
	var total int64
	for _, c := range s.Counters {
		if baseName(c.Name) == base {
			total += c.Value
		}
	}
	return total
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadSnapshot parses a snapshot previously written with WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	return s, nil
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format. Histograms are rendered as summaries (quantile-labelled
// gauges plus _sum and _count).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", baseName(c.Name), c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %v\n", baseName(g.Name), g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		base := baseName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s summary\n", base)
		for _, qv := range []struct {
			q string
			v float64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			fmt.Fprintf(&b, "%s %v\n", withLabel(h.Name, "quantile", qv.q), qv.v)
		}
		fmt.Fprintf(&b, "%s %v\n", suffixed(h.Name, "_sum"), h.Sum)
		fmt.Fprintf(&b, "%s %d\n", suffixed(h.Name, "_count"), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// baseName strips the label block from a formatted metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel adds one label to a possibly already-labelled name.
func withLabel(name, key, value string) string {
	if strings.IndexByte(name, '{') >= 0 {
		return name[:len(name)-1] + fmt.Sprintf(",%s=%q}", key, value)
	}
	return fmt.Sprintf("%s{%s=%q}", name, key, value)
}

// suffixed appends a suffix to the base name, keeping any label block.
func suffixed(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}
