// Package obs is the repo's zero-dependency observability layer: a
// concurrency-safe metrics registry (counters, gauges, streaming
// histograms with quantiles), a run-scoped Recorder that packages reach
// through a context (no-op by default, so uninstrumented callers pay
// essentially nothing), structured span/event logging built on
// log/slog, and pprof/trace profiling hooks for the CLIs.
//
// The design mirrors how deployment-oriented ski-rental systems treat
// per-decision telemetry as the interface between algorithm and
// operator: every layer (simulator, policy selector, adaptive wrapper,
// experiment drivers, fleet generator) publishes what it decided and
// what it cost, and the CLIs expose the aggregate as a JSON or
// Prometheus-style snapshot.
//
// Usage sketch:
//
//	reg := obs.NewRegistry()
//	rec := obs.NewRecorder("replay-1", reg, nil)
//	ctx := obs.WithRecorder(context.Background(), rec)
//	... instrumented code calls obs.FromContext(ctx) ...
//	reg.WriteJSON(os.Stdout)
package obs

import (
	"fmt"
	"strings"
)

// L formats a metric name with label pairs in Prometheus style:
//
//	L("sim_stops_total", "policy", "DET") == `sim_stops_total{policy="DET"}`
//
// Keys and values are emitted in argument order; an odd trailing key is
// ignored. Values containing '"' are escaped.
func L(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}
