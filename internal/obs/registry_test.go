package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestLFormatting(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{L("plain"), "plain"},
		{L("m", "k", "v"), `m{k="v"}`},
		{L("m", "a", "1", "b", "2"), `m{a="1",b="2"}`},
		{L("m", "dangling"), "m"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter %d want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("counter not memoized")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge %v want 1.5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	// 1..1000: quantiles should land within the bucket relative error.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	for _, c := range []struct {
		q, want float64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}} {
		got := h.Quantile(c.q)
		if rel := math.Abs(got-c.want) / c.want; rel > 0.08 {
			t.Errorf("p%v = %v want ~%v (rel err %.3f)", c.q*100, got, c.want, rel)
		}
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %v want min 1", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("q1 = %v want max 1000", got)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	h.buckets = map[int]uint64{}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	if h.Count() != 0 {
		t.Error("non-finite observations must be dropped")
	}
	// All-zero observations report 0 at every quantile.
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("zero-only p50 = %v", got)
	}
	if got := h.Sum(); got != 0 {
		t.Errorf("sum %v", got)
	}
}

// TestRegistryConcurrentWriters hammers one registry from many
// goroutines; run with -race (the Makefile check target does).
func TestRegistryConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared_total").Inc()
				r.Gauge("shared_gauge").Add(1)
				r.Histogram("shared_hist").Observe(float64(i%100) + 1)
				if i%100 == 0 {
					// Exercise create paths concurrently too.
					r.Counter(L("per_worker_total", "w", string(rune('a'+w)))).Inc()
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*perWorker {
		t.Errorf("counter %d want %d", got, workers*perWorker)
	}
	if got := r.Gauge("shared_gauge").Value(); got != workers*perWorker {
		t.Errorf("gauge %v want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared_hist").Count(); got != workers*perWorker {
		t.Errorf("hist count %d want %d", got, workers*perWorker)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(L("stops_total", "area", "chicago")).Add(7)
	r.Gauge("cr").Set(1.25)
	for i := 1; i <= 100; i++ {
		r.Histogram("cents").Observe(float64(i))
	}
	s := r.Snapshot()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 7 {
		t.Errorf("counters %+v", back.Counters)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Count != 100 {
		t.Errorf("histograms %+v", back.Histograms)
	}
	if back.Histograms[0].P99 < back.Histograms[0].P50 {
		t.Error("quantiles out of order")
	}
}

func TestSnapshotPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(L("stops_total", "area", "chicago")).Add(3)
	r.Gauge("cr").Set(1.5)
	r.Histogram("cents").Observe(10)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"# TYPE stops_total counter",
		`stops_total{area="chicago"} 3`,
		"# TYPE cr gauge",
		"cr 1.5",
		"# TYPE cents summary",
		`cents{quantile="0.5"}`,
		"cents_sum 10",
		"cents_count 1",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("prometheus output missing %q:\n%s", frag, out)
		}
	}
}

func TestPrometheusLabelMerging(t *testing.T) {
	if got := withLabel(`h{a="b"}`, "quantile", "0.5"); got != `h{a="b",quantile="0.5"}` {
		t.Errorf("withLabel: %q", got)
	}
	if got := suffixed(`h{a="b"}`, "_sum"); got != `h_sum{a="b"}` {
		t.Errorf("suffixed: %q", got)
	}
	if got := baseName(`h{a="b"}`); got != "h" {
		t.Errorf("baseName: %q", got)
	}
}
