package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiles configures the standard Go profiling outputs a CLI can
// offer. Empty paths disable the corresponding profile.
type Profiles struct {
	// CPUFile receives a pprof CPU profile.
	CPUFile string
	// MemFile receives a heap profile written at stop (after a GC).
	MemFile string
	// TraceFile receives a runtime execution trace.
	TraceFile string
}

// AddFlags registers the conventional -cpuprofile, -memprofile and
// -trace flags on fs.
func (p *Profiles) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUFile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemFile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&p.TraceFile, "trace", "", "write a runtime execution trace to this file")
}

// Start begins the configured profiles and returns a closer that stops
// them and flushes the files. The closer is safe to call when nothing
// was enabled. On error, anything already started is stopped.
func (p Profiles) Start() (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
	}
	if p.CPUFile != "" {
		cpuF, err = os.Create(p.CPUFile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	if p.TraceFile != "" {
		traceF, err = os.Create(p.TraceFile)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
	}
	memFile := p.MemFile
	return func() error {
		var firstErr error
		if traceF != nil {
			trace.Stop()
			if err := traceF.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				runtime.GC() // materialize the live heap before writing
				if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
					firstErr = err
				}
				if err := f.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		return firstErr
	}, nil
}
