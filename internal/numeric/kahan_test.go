package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKahanSumCancellation(t *testing.T) {
	// Classic Neumaier test: 1 + 1e100 + 1 - 1e100 = 2, naive sum gives 0.
	var k KahanSum
	for _, v := range []float64{1, 1e100, 1, -1e100} {
		k.Add(v)
	}
	if got := k.Sum(); got != 2 {
		t.Errorf("got %v want 2", got)
	}
}

func TestKahanSumManySmall(t *testing.T) {
	var k KahanSum
	const n = 1_000_000
	for i := 0; i < n; i++ {
		k.Add(0.1)
	}
	if !almostEqual(k.Sum(), n*0.1, 1e-6) {
		t.Errorf("got %.10f want %v", k.Sum(), n*0.1)
	}
}

func TestKahanReset(t *testing.T) {
	var k KahanSum
	k.Add(42)
	k.Reset()
	if k.Sum() != 0 {
		t.Errorf("after reset: %v", k.Sum())
	}
}

func TestSumSliceMatchesLoop(t *testing.T) {
	prop := func(xs []float64) bool {
		for _, x := range xs {
			// Skip inputs whose intermediate sums can overflow; the
			// compensation identity only holds in the finite range.
			if math.IsNaN(x) || math.Abs(x) > 1e300/float64(len(xs)+1) {
				return true
			}
		}
		var naive float64
		for _, x := range xs {
			naive += x
		}
		got := SumSlice(xs)
		scale := 1.0
		for _, x := range xs {
			scale += math.Abs(x)
		}
		return math.Abs(got-naive) <= 1e-9*scale
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(xs) != len(want) {
		t.Fatalf("len %d", len(xs))
	}
	for i := range xs {
		if !almostEqual(xs[i], want[i], 1e-12) {
			t.Errorf("xs[%d] = %v want %v", i, xs[i], want[i])
		}
	}
}

func TestLinspaceDegenerate(t *testing.T) {
	xs := Linspace(3, 9, 1)
	if len(xs) != 1 || xs[0] != 3 {
		t.Errorf("got %v", xs)
	}
}

func TestLinspaceEndpointExact(t *testing.T) {
	// The last point must be exactly b even when the step is inexact.
	xs := Linspace(0, 0.3, 7)
	if xs[len(xs)-1] != 0.3 {
		t.Errorf("endpoint %v != 0.3", xs[len(xs)-1])
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{-1, 0, 1, 0},
		{0.5, 0, 1, 0.5},
		{2, 0, 1, 1},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}
