package numeric

import (
	"math"
	"testing"
)

func TestRegularizedGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.2, 1, 3, 10} {
		want := 1 - math.Exp(-x)
		if got := LowerGammaRegularized(1, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1, %v) = %v want %v", x, got, want)
		}
	}
	// Q(0.5, x) = erfc(sqrt(x)).
	for _, x := range []float64{0.3, 2, 7} {
		want := math.Erfc(math.Sqrt(x))
		if got := UpperGammaRegularized(0.5, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("Q(0.5, %v) = %v want %v", x, got, want)
		}
	}
}

func TestRegularizedGammaComplement(t *testing.T) {
	for _, a := range []float64{0.2, 1, 3.7, 15} {
		for _, x := range []float64{0.01, 0.5, a, 3 * a, 50} {
			p := LowerGammaRegularized(a, x)
			q := UpperGammaRegularized(a, x)
			if math.Abs(p+q-1) > 1e-12 {
				t.Errorf("a=%v x=%v: P+Q=%v", a, x, p+q)
			}
			if p < 0 || p > 1 {
				t.Errorf("P(%v, %v) = %v out of range", a, x, p)
			}
		}
	}
}

func TestRegularizedGammaBoundaries(t *testing.T) {
	if LowerGammaRegularized(2, 0) != 0 || UpperGammaRegularized(2, 0) != 1 {
		t.Error("x=0 boundary wrong")
	}
	if !math.IsNaN(LowerGammaRegularized(0, 1)) || !math.IsNaN(UpperGammaRegularized(-1, 1)) {
		t.Error("invalid shape should be NaN")
	}
	if !math.IsNaN(LowerGammaRegularized(1, -1)) {
		t.Error("negative x should be NaN")
	}
}

func TestRegularizedGammaMonotoneInX(t *testing.T) {
	prev := -1.0
	for _, x := range Linspace(0, 30, 200) {
		p := LowerGammaRegularized(2.5, x)
		if p < prev-1e-12 {
			t.Fatalf("P not monotone at x=%v", x)
		}
		prev = p
	}
}
