package numeric

import "math"

// invPhi is 1/phi, the golden-section reduction factor.
var invPhi = (math.Sqrt(5) - 1) / 2

// GoldenMin minimizes a unimodal function f on [a, b] by golden-section
// search, returning the abscissa of the minimum to absolute tolerance tol.
// On multimodal functions it returns a local minimum inside the interval.
func GoldenMin(f Func, a, b, tol float64) (float64, error) {
	if !(a < b) || math.IsNaN(a) || math.IsNaN(b) {
		return 0, ErrBadInterval
	}
	if tol <= 0 {
		tol = 1e-10
	}
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 400 && b-a > tol; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return a + (b-a)/2, nil
}

// GridMin evaluates f at n+1 uniformly spaced points on [a, b] and returns
// the abscissa of the smallest value. It is the robust (non-unimodal)
// companion to GoldenMin, used to seed searches on adversarial objectives.
func GridMin(f Func, a, b float64, n int) (xBest, fBest float64) {
	if n < 1 {
		n = 1
	}
	xBest, fBest = a, f(a)
	for i := 1; i <= n; i++ {
		x := a + (b-a)*float64(i)/float64(n)
		if v := f(x); v < fBest {
			xBest, fBest = x, v
		}
	}
	return xBest, fBest
}

// GridMax is GridMin for maximization.
func GridMax(f Func, a, b float64, n int) (xBest, fBest float64) {
	xBest, neg := GridMin(func(x float64) float64 { return -f(x) }, a, b, n)
	return xBest, -neg
}

// GoldenMax maximizes a unimodal function on [a, b]; see GoldenMin.
func GoldenMax(f Func, a, b, tol float64) (float64, error) {
	return GoldenMin(func(x float64) float64 { return -f(x) }, a, b, tol)
}
