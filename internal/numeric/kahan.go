package numeric

// KahanSum accumulates floating-point values with Kahan–Babuška
// (Neumaier) compensation, keeping the rounding error of long cost
// accumulations bounded independently of the number of terms.
// The zero value is ready to use.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if abs(k.sum) >= abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum + k.c }

// Reset clears the accumulator.
func (k *KahanSum) Reset() { k.sum, k.c = 0, 0 }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// SumSlice returns the compensated sum of xs.
func SumSlice(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// Linspace returns n points uniformly spaced on [a, b] inclusive.
// n < 2 yields []float64{a}.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		return []float64{a}
	}
	xs := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range xs {
		xs[i] = a + float64(i)*step
	}
	xs[n-1] = b
	return xs
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
