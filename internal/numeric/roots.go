package numeric

import (
	"errors"
	"math"
)

// ErrNoBracket is returned by the bracketing root finders when f(a) and
// f(b) do not have opposite signs.
var ErrNoBracket = errors.New("numeric: root is not bracketed")

// ErrNoConverge is returned when an iterative method exhausts its iteration
// budget without meeting the requested tolerance.
var ErrNoConverge = errors.New("numeric: iteration did not converge")

// Bisect finds a root of f in [a, b] by bisection to absolute tolerance
// tol on x. f(a) and f(b) must have opposite signs (or one endpoint must
// already be a root).
func Bisect(f Func, a, b, tol float64) (float64, error) {
	if !(a < b) || math.IsNaN(a) || math.IsNaN(b) {
		return 0, ErrBadInterval
	}
	if tol <= 0 {
		tol = 1e-12
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrNoBracket
	}
	for i := 0; i < 200; i++ {
		m := a + (b-a)/2
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if fa*fm < 0 {
			b = m
		} else {
			a, fa = m, fm
		}
	}
	return a + (b-a)/2, ErrNoConverge
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). It converges superlinearly on
// smooth functions and never leaves the bracket.
func Brent(f Func, a, b, tol float64) (float64, error) {
	if !(a < b) || math.IsNaN(a) || math.IsNaN(b) {
		return 0, ErrBadInterval
	}
	if tol <= 0 {
		tol = 1e-12
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrNoBracket
	}
	// Ensure |f(b)| <= |f(a)|: b is the best estimate so far.
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	d := b - a
	mflag := true
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant step.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = a + (b-a)/2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d, c, fc = c, b, fb
		if fa*fs < 0 {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, ErrNoConverge
}
