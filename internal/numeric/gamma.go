package numeric

import "math"

// UpperGammaRegularized computes Q(a, x) = Γ(a, x)/Γ(a), the regularized
// upper incomplete gamma function, using the series expansion for
// x < a+1 and the Lentz continued fraction otherwise. It backs both the
// chi-square survival function (stats) and the Gamma distribution's CDF
// (dist).
func UpperGammaRegularized(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - lowerGammaSeries(a, x)
	default:
		return upperGammaContinuedFraction(a, x)
	}
}

// LowerGammaRegularized computes P(a, x) = 1 - Q(a, x).
func LowerGammaRegularized(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return lowerGammaSeries(a, x)
	default:
		return 1 - upperGammaContinuedFraction(a, x)
	}
}

func lowerGammaSeries(a, x float64) float64 {
	lgamma, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lgamma)
}

func upperGammaContinuedFraction(a, x float64) float64 {
	lgamma, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lgamma) * h
}
