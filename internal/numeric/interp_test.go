package numeric

import (
	"errors"
	"testing"
)

func TestInterpExactAtKnots(t *testing.T) {
	in, err := NewInterp([]float64{0, 1, 2, 4}, []float64{1, 3, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range []float64{0, 1, 2, 4} {
		want := []float64{1, 3, 2, 8}[i]
		if got := in.At(x); !almostEqual(got, want, 1e-12) {
			t.Errorf("At(%v) = %v want %v", x, got, want)
		}
	}
}

func TestInterpMidpoints(t *testing.T) {
	in, _ := NewInterp([]float64{0, 2}, []float64{0, 4})
	if got := in.At(1); !almostEqual(got, 2, 1e-12) {
		t.Errorf("midpoint %v want 2", got)
	}
}

func TestInterpExtrapolation(t *testing.T) {
	in, _ := NewInterp([]float64{0, 1}, []float64{0, 1})
	if got := in.At(2); !almostEqual(got, 2, 1e-12) {
		t.Errorf("right extrapolation %v want 2", got)
	}
	if got := in.At(-1); !almostEqual(got, -1, 1e-12) {
		t.Errorf("left extrapolation %v want -1", got)
	}
}

func TestInterpRejectsUnsorted(t *testing.T) {
	if _, err := NewInterp([]float64{0, 0}, []float64{1, 2}); !errors.Is(err, ErrUnsorted) {
		t.Errorf("want ErrUnsorted, got %v", err)
	}
	if _, err := NewInterp([]float64{1, 0}, []float64{1, 2}); !errors.Is(err, ErrUnsorted) {
		t.Errorf("want ErrUnsorted for decreasing, got %v", err)
	}
}

func TestInterpRejectsShortInput(t *testing.T) {
	if _, err := NewInterp([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for single knot")
	}
	if _, err := NewInterp([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for mismatched lengths")
	}
}

func TestInterpMinMax(t *testing.T) {
	in, _ := NewInterp([]float64{0, 1, 2}, []float64{5, -3, 4})
	if in.Min() != -3 {
		t.Errorf("Min = %v", in.Min())
	}
	if in.Max() != 5 {
		t.Errorf("Max = %v", in.Max())
	}
}

func TestInterpCopiesInput(t *testing.T) {
	xs := []float64{0, 1}
	ys := []float64{0, 1}
	in, _ := NewInterp(xs, ys)
	xs[0], ys[0] = 99, 99 // mutating the caller's slices must not matter
	if got := in.At(0); got != 0 {
		t.Errorf("interpolant aliased caller data: At(0) = %v", got)
	}
}
