// Package numeric provides the small numerical-analysis substrate used by
// the rest of the library: numerical integration, root finding, scalar
// minimization, ODE integration and compensated summation.
//
// Everything here is deterministic, allocation-light and built on the
// standard library only. The routines are tuned for the smooth, univariate
// functions that arise in ski-rental analysis (exponential densities on
// [0, B], piecewise-linear cost integrands) rather than for generality.
package numeric

import (
	"errors"
	"math"
)

// ErrMaxDepth is returned by the adaptive integrators when the recursion
// limit is reached before the error tolerance is met.
var ErrMaxDepth = errors.New("numeric: adaptive integration exceeded maximum recursion depth")

// ErrBadInterval is returned when an integration or search interval is
// empty, inverted or contains non-finite endpoints.
var ErrBadInterval = errors.New("numeric: invalid interval")

// Func is a scalar function of one variable.
type Func func(x float64) float64

// simpson returns the basic Simpson estimate of the integral of f over
// [a, b] given precomputed endpoint values fa, fb and midpoint value fm.
func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

// IntegrateSimpson integrates f over [a, b] with adaptive Simpson
// quadrature to absolute tolerance tol. It returns ErrBadInterval for
// invalid intervals and ErrMaxDepth when the integrand is too rough for
// the fixed recursion budget.
func IntegrateSimpson(f Func, a, b, tol float64) (float64, error) {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return 0, ErrBadInterval
	}
	if a == b {
		return 0, nil
	}
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}
	if tol <= 0 {
		tol = 1e-10
	}
	// Bootstrap with several initial panels so a narrow peak between the
	// first stencil points cannot fool the error estimate into an early
	// exit (e.g. a lognormal spike on a wide integration range).
	const panels = 16
	var sum KahanSum
	var firstErr error
	h := (b - a) / panels
	for i := 0; i < panels; i++ {
		pa := a + float64(i)*h
		pb := pa + h
		if i == panels-1 {
			pb = b
		}
		pm := pa + (pb-pa)/2
		fa, fm, fb := f(pa), f(pm), f(pb)
		whole := simpson(pa, pb, fa, fm, fb)
		v, err := adaptiveSimpson(f, pa, pb, fa, fm, fb, whole, tol/panels, 48)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		sum.Add(v)
	}
	return sign * sum.Sum(), firstErr
}

// adaptiveSimpson implements the recursive refinement with the classic
// 1/15 Richardson error estimate.
func adaptiveSimpson(f Func, a, b, fa, fm, fb, whole, tol float64, depth int) (float64, error) {
	m := a + (b-a)/2
	lm := a + (m-a)/2
	rm := m + (b-m)/2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	delta := left + right - whole
	if math.Abs(delta) <= 15*tol {
		return left + right + delta/15, nil
	}
	if depth <= 0 {
		return left + right + delta/15, ErrMaxDepth
	}
	lv, lerr := adaptiveSimpson(f, a, m, fa, flm, fm, left, tol/2, depth-1)
	rv, rerr := adaptiveSimpson(f, m, b, fm, frm, fb, right, tol/2, depth-1)
	if lerr != nil {
		return lv + rv, lerr
	}
	return lv + rv, rerr
}

// Integrate is a convenience wrapper around IntegrateSimpson with a default
// tolerance of 1e-10. It panics only on programming errors (invalid
// interval), returning best-effort values otherwise; use IntegrateSimpson
// directly when the error matters.
func Integrate(f Func, a, b float64) float64 {
	v, err := IntegrateSimpson(f, a, b, 1e-10)
	if errors.Is(err, ErrBadInterval) {
		panic("numeric.Integrate: invalid interval")
	}
	return v
}

// IntegrateN integrates f over [a, b] using composite Simpson with n
// uniform panels (n is rounded up to the next even number, minimum 2).
// It is the non-adaptive fallback used in benchmarks and property tests
// where a fixed cost matters more than adaptivity.
func IntegrateN(f Func, a, b float64, n int) float64 {
	if a == b {
		return 0
	}
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	var sum KahanSum
	sum.Add(f(a))
	sum.Add(f(b))
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		w := 4.0
		if i%2 == 0 {
			w = 2.0
		}
		sum.Add(w * f(x))
	}
	return sum.Sum() * h / 3
}
