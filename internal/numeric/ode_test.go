package numeric

import (
	"math"
	"testing"
)

func TestRK4PaperODE(t *testing.T) {
	// Paper eq. 29: dp/dx = p/B with analytic solution C0*exp(x/B)
	// (eq. 30). Check RK4 reproduces it for the SSV break-even B = 28.
	const B = 28.0
	c0 := 1 / (B * (math.E - 1))
	rhs := func(x, p float64) float64 { return p / B }
	got := RK4(rhs, 0, c0, B, 2000)
	want := c0 * math.E
	if !almostEqual(got, want, 1e-10) {
		t.Errorf("p(B) = %.14f, want %.14f", got, want)
	}
}

func TestRK4LinearODE(t *testing.T) {
	// dy/dx = 2x, y(0)=1 -> y = x^2 + 1.
	got := RK4(func(x, y float64) float64 { return 2 * x }, 0, 1, 3, 100)
	if !almostEqual(got, 10, 1e-10) {
		t.Errorf("got %v want 10", got)
	}
}

func TestRK4PathEndpoints(t *testing.T) {
	xs, ys := RK4Path(func(x, y float64) float64 { return y }, 0, 1, 1, 64)
	if len(xs) != 65 || len(ys) != 65 {
		t.Fatalf("lengths %d %d", len(xs), len(ys))
	}
	if xs[0] != 0 || ys[0] != 1 {
		t.Errorf("initial condition corrupted: (%v, %v)", xs[0], ys[0])
	}
	if !almostEqual(xs[64], 1, 1e-12) || !almostEqual(ys[64], math.E, 1e-8) {
		t.Errorf("end: (%v, %v), want (1, e)", xs[64], ys[64])
	}
}

func TestRK4ZeroSteps(t *testing.T) {
	// n < 1 is clamped to a single step; the result should still be a
	// first-step RK4 estimate, finite and close for smooth f.
	got := RK4(func(x, y float64) float64 { return 0 }, 0, 5, 10, 0)
	if got != 5 {
		t.Errorf("constant solution perturbed: %v", got)
	}
}

func TestRK4ConvergenceOrder(t *testing.T) {
	// Halving the step size should shrink the error by ~2^4.
	exact := math.Exp(1.0)
	f := func(x, y float64) float64 { return y }
	e1 := math.Abs(RK4(f, 0, 1, 1, 8) - exact)
	e2 := math.Abs(RK4(f, 0, 1, 1, 16) - exact)
	if e2 == 0 {
		return // better than expected
	}
	ratio := e1 / e2
	if ratio < 10 || ratio > 25 {
		t.Errorf("convergence ratio %v, want ≈16 (4th order)", ratio)
	}
}
