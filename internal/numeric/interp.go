package numeric

import (
	"errors"
	"math"
	"sort"
)

// ErrUnsorted is returned when interpolation knots are not strictly
// increasing.
var ErrUnsorted = errors.New("numeric: interpolation knots must be strictly increasing")

// Interp is a piecewise-linear interpolant over strictly increasing knots.
type Interp struct {
	xs []float64
	ys []float64
}

// NewInterp builds a linear interpolant through the points (xs[i], ys[i]).
// The xs must be strictly increasing and len(xs) == len(ys) >= 2.
func NewInterp(xs, ys []float64) (*Interp, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return nil, errors.New("numeric: need at least two matching knots")
	}
	for i := 1; i < len(xs); i++ {
		if !(xs[i] > xs[i-1]) {
			return nil, ErrUnsorted
		}
	}
	in := &Interp{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)}
	return in, nil
}

// At evaluates the interpolant at x, extrapolating with the boundary
// segments outside the knot range.
func (in *Interp) At(x float64) float64 {
	n := len(in.xs)
	if x <= in.xs[0] {
		return in.segment(0, x)
	}
	if x >= in.xs[n-1] {
		return in.segment(n-2, x)
	}
	// sort.Search finds the first knot strictly greater than x.
	i := sort.Search(n, func(i int) bool { return in.xs[i] > x }) - 1
	return in.segment(i, x)
}

func (in *Interp) segment(i int, x float64) float64 {
	x0, x1 := in.xs[i], in.xs[i+1]
	y0, y1 := in.ys[i], in.ys[i+1]
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// Min returns the smallest knot ordinate.
func (in *Interp) Min() float64 {
	m := math.Inf(1)
	for _, y := range in.ys {
		if y < m {
			m = y
		}
	}
	return m
}

// Max returns the largest knot ordinate.
func (in *Interp) Max() float64 {
	m := math.Inf(-1)
	for _, y := range in.ys {
		if y > m {
			m = y
		}
	}
	return m
}
