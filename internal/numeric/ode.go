package numeric

// ODEFunc is the right-hand side of a scalar first-order ODE
// dy/dx = f(x, y).
type ODEFunc func(x, y float64) float64

// RK4 integrates dy/dx = f(x, y) from (x0, y0) to x1 with n fixed
// fourth-order Runge-Kutta steps and returns y(x1).
//
// The library uses it to verify the paper's ODE for the continuous part of
// the optimal strategy density, dp/dx = p/B (eq. 29), against the analytic
// solution p(x) = C0·exp(x/B) (eq. 30).
func RK4(f ODEFunc, x0, y0, x1 float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	h := (x1 - x0) / float64(n)
	x, y := x0, y0
	for i := 0; i < n; i++ {
		k1 := f(x, y)
		k2 := f(x+h/2, y+h/2*k1)
		k3 := f(x+h/2, y+h/2*k2)
		k4 := f(x+h, y+h*k3)
		y += h / 6 * (k1 + 2*k2 + 2*k3 + k4)
		x = x0 + float64(i+1)*h
	}
	return y
}

// RK4Path integrates like RK4 but returns the whole trajectory: n+1 pairs
// (x_i, y_i) including the initial condition.
func RK4Path(f ODEFunc, x0, y0, x1 float64, n int) (xs, ys []float64) {
	if n < 1 {
		n = 1
	}
	xs = make([]float64, n+1)
	ys = make([]float64, n+1)
	h := (x1 - x0) / float64(n)
	x, y := x0, y0
	xs[0], ys[0] = x, y
	for i := 0; i < n; i++ {
		k1 := f(x, y)
		k2 := f(x+h/2, y+h/2*k1)
		k3 := f(x+h/2, y+h/2*k2)
		k4 := f(x+h, y+h*k3)
		y += h / 6 * (k1 + 2*k2 + 2*k3 + k4)
		x = x0 + float64(i+1)*h
		xs[i+1], ys[i+1] = x, y
	}
	return xs, ys
}
