package numeric

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBisectSimpleRoot(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	got, err := Bisect(f, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, math.Sqrt2, 1e-10) {
		t.Errorf("got %v want %v", got, math.Sqrt2)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if got, err := Bisect(f, 0, 1, 1e-12); err != nil || got != 0 {
		t.Errorf("left endpoint root: %v, %v", got, err)
	}
	if got, err := Bisect(f, -1, 0, 1e-12); err != nil || got != 0 {
		t.Errorf("right endpoint root: %v, %v", got, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-12); !errors.Is(err, ErrNoBracket) {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

func TestBisectBadInterval(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := Bisect(f, 2, 1, 1e-12); !errors.Is(err, ErrBadInterval) {
		t.Errorf("want ErrBadInterval, got %v", err)
	}
}

func TestBrentTranscendental(t *testing.T) {
	// Root of cos(x) - x near 0.739085.
	f := func(x float64) float64 { return math.Cos(x) - x }
	got, err := Brent(f, 0, 1, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.7390851332151607, 1e-9) {
		t.Errorf("got %v", got)
	}
}

func TestBrentMatchesBisect(t *testing.T) {
	fns := []struct {
		name string
		f    Func
		a, b float64
	}{
		{"cubic", func(x float64) float64 { return x*x*x - x - 2 }, 1, 2},
		{"exp", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3},
		{"log", func(x float64) float64 { return math.Log(x) - 1 }, 1, 5},
	}
	for _, tc := range fns {
		rb, err1 := Bisect(tc.f, tc.a, tc.b, 1e-12)
		rr, err2 := Brent(tc.f, tc.a, tc.b, 1e-12)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", tc.name, err1, err2)
		}
		if !almostEqual(rb, rr, 1e-9) {
			t.Errorf("%s: bisect %v brent %v", tc.name, rb, rr)
		}
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 + x*x }, -3, 3, 1e-12); !errors.Is(err, ErrNoBracket) {
		t.Errorf("want ErrNoBracket, got %v", err)
	}
}

func TestBrentPropertyLinear(t *testing.T) {
	// For f(x) = x - r with r in (0,1), both methods must locate r.
	prop := func(u uint16) bool {
		r := (float64(u) + 1) / (float64(math.MaxUint16) + 2)
		f := func(x float64) float64 { return x - r }
		got, err := Brent(f, 0, 1, 1e-13)
		return err == nil && almostEqual(got, r, 1e-10)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGoldenMinQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.7) * (x - 1.7) }
	got, err := GoldenMin(f, -5, 5, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 1.7, 1e-7) {
		t.Errorf("got %v want 1.7", got)
	}
}

func TestGoldenMinBDETObjective(t *testing.T) {
	// The b-DET cost (b+B)(mu/b + q) is minimized at b* = sqrt(mu*B/q)
	// (paper eq. 34-35). Verify the numeric minimizer agrees.
	const B, mu, q = 28.0, 5.0, 0.3
	f := func(b float64) float64 { return (b + B) * (mu/b + q) }
	got, err := GoldenMin(f, 1e-6, B, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(mu * B / q)
	if !almostEqual(got, want, 1e-5) {
		t.Errorf("b* = %v, want %v", got, want)
	}
	// And the minimum value is (sqrt(mu)+sqrt(qB))^2 (eq. 35).
	wantVal := math.Pow(math.Sqrt(mu)+math.Sqrt(q*B), 2)
	if !almostEqual(f(got), wantVal, 1e-6) {
		t.Errorf("min value %v, want %v", f(got), wantVal)
	}
}

func TestGoldenMaxMirror(t *testing.T) {
	f := func(x float64) float64 { return -(x - 2) * (x - 2) }
	got, err := GoldenMax(f, 0, 5, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2, 1e-7) {
		t.Errorf("got %v want 2", got)
	}
}

func TestGridMinFindsGlobalAmongBumps(t *testing.T) {
	// Two local minima; grid search must find the deeper one at x≈4.
	f := func(x float64) float64 {
		return math.Min((x-1)*(x-1)+0.5, (x-4)*(x-4))
	}
	x, v := GridMin(f, 0, 5, 1000)
	if !almostEqual(x, 4, 0.01) || v > 0.001 {
		t.Errorf("x=%v v=%v", x, v)
	}
}

func TestGridMaxEndpoint(t *testing.T) {
	x, v := GridMax(func(x float64) float64 { return x }, 0, 7, 10)
	if x != 7 || v != 7 {
		t.Errorf("got (%v, %v), want (7, 7)", x, v)
	}
}
