package numeric

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestIntegrateSimpsonPolynomial(t *testing.T) {
	// Simpson is exact on cubics; adaptivity must not spoil that.
	f := func(x float64) float64 { return 3*x*x*x - 2*x*x + x - 5 }
	got, err := IntegrateSimpson(f, -1, 2, 1e-12)
	if err != nil {
		t.Fatalf("IntegrateSimpson: %v", err)
	}
	// Antiderivative: 3/4 x^4 - 2/3 x^3 + 1/2 x^2 - 5x.
	F := func(x float64) float64 { return 0.75*math.Pow(x, 4) - 2.0/3.0*math.Pow(x, 3) + 0.5*x*x - 5*x }
	want := F(2) - F(-1)
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("got %.12f want %.12f", got, want)
	}
}

func TestIntegrateSimpsonExponential(t *testing.T) {
	// The paper's density p(x) = e^{x/B}/(B(e-1)) must integrate to 1 on [0, B].
	for _, b := range []float64{1, 10, 28, 47, 300} {
		f := func(x float64) float64 { return math.Exp(x/b) / (b * (math.E - 1)) }
		got, err := IntegrateSimpson(f, 0, b, 1e-12)
		if err != nil {
			t.Fatalf("B=%v: %v", b, err)
		}
		if !almostEqual(got, 1, 1e-9) {
			t.Errorf("B=%v: integral of N-Rand density = %.12f, want 1", b, got)
		}
	}
}

func TestIntegrateSimpsonReversedInterval(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	fwd, _ := IntegrateSimpson(f, 0, 3, 1e-12)
	rev, _ := IntegrateSimpson(f, 3, 0, 1e-12)
	if !almostEqual(fwd, -rev, 1e-9) {
		t.Errorf("reversed interval: %v vs %v", fwd, rev)
	}
	if !almostEqual(fwd, 9, 1e-9) {
		t.Errorf("fwd = %v, want 9", fwd)
	}
}

func TestIntegrateSimpsonEmptyInterval(t *testing.T) {
	got, err := IntegrateSimpson(func(x float64) float64 { return 1 / x }, 2, 2, 1e-12)
	if err != nil || got != 0 {
		t.Errorf("empty interval: got %v, %v", got, err)
	}
}

func TestIntegrateSimpsonBadInterval(t *testing.T) {
	_, err := IntegrateSimpson(func(x float64) float64 { return x }, math.NaN(), 1, 1e-12)
	if !errors.Is(err, ErrBadInterval) {
		t.Errorf("want ErrBadInterval, got %v", err)
	}
	_, err = IntegrateSimpson(func(x float64) float64 { return x }, 0, math.Inf(1), 1e-12)
	if !errors.Is(err, ErrBadInterval) {
		t.Errorf("want ErrBadInterval for infinite endpoint, got %v", err)
	}
}

func TestIntegrateNMatchesAdaptive(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(x) + x }
	a, b := 0.0, math.Pi
	ad, _ := IntegrateSimpson(f, a, b, 1e-12)
	fx := IntegrateN(f, a, b, 2048)
	if !almostEqual(ad, fx, 1e-8) {
		t.Errorf("adaptive %v vs fixed %v", ad, fx)
	}
}

func TestIntegrateNOddPanelsRoundedUp(t *testing.T) {
	f := func(x float64) float64 { return x }
	got := IntegrateN(f, 0, 1, 3) // rounded up to 4 panels; exact for linear
	if !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("got %v want 0.5", got)
	}
}

func TestIntegrateLinearityProperty(t *testing.T) {
	// Property: integral of (a*f + c) over [0,1] == a*∫f + c.
	base := func(x float64) float64 { return math.Exp(-x) }
	baseI, _ := IntegrateSimpson(base, 0, 1, 1e-12)
	prop := func(a8, c8 int8) bool {
		a, c := float64(a8), float64(c8)
		f := func(x float64) float64 { return a*base(x) + c }
		got, err := IntegrateSimpson(f, 0, 1, 1e-11)
		if err != nil {
			return false
		}
		return almostEqual(got, a*baseI+c, 1e-7*(1+math.Abs(a)+math.Abs(c)))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIntegratePanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Integrate should panic on NaN endpoint")
		}
	}()
	Integrate(func(x float64) float64 { return x }, math.NaN(), 1)
}
