package lp

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newTestRNG() *rand.Rand { return rand.New(rand.NewPCG(404, 808)) }

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, st, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	if st != Optimal {
		t.Fatalf("status %v, want optimal", st)
	}
	return sol
}

func TestSolveBasicInequality(t *testing.T) {
	// min -x - y s.t. x + y <= 4, x <= 2  ->  x=2, y=2, obj=-4.
	p := &Problem{
		C:   []float64{-1, -1},
		AUb: [][]float64{{1, 1}, {1, 0}},
		BUb: []float64{4, 2},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective+4) > 1e-8 {
		t.Errorf("objective %v, want -4", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-8 || math.Abs(sol.X[1]-2) > 1e-8 {
		t.Errorf("x = %v, want [2 2]", sol.X)
	}
}

func TestSolveEquality(t *testing.T) {
	// min x + 2y s.t. x + y = 3  ->  x=3, y=0, obj=3.
	p := &Problem{
		C:   []float64{1, 2},
		AEq: [][]float64{{1, 1}},
		BEq: []float64{3},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-3) > 1e-8 {
		t.Errorf("objective %v, want 3", sol.Objective)
	}
}

func TestSolveMixedConstraints(t *testing.T) {
	// min -2x - 3y s.t. x + y = 4, x <= 3, y <= 3 -> x=1, y=3, obj=-11.
	p := &Problem{
		C:   []float64{-2, -3},
		AEq: [][]float64{{1, 1}},
		BEq: []float64{4},
		AUb: [][]float64{{1, 0}, {0, 1}},
		BUb: []float64{3, 3},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective+11) > 1e-8 {
		t.Errorf("objective %v, want -11", sol.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x = 5 with x <= 2 is infeasible.
	p := &Problem{
		C:   []float64{1},
		AEq: [][]float64{{1}},
		BEq: []float64{5},
		AUb: [][]float64{{1}},
		BUb: []float64{2},
	}
	_, st, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st != Infeasible {
		t.Errorf("status %v, want infeasible", st)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x with x >= 0 free to grow: only constraint y <= 1.
	p := &Problem{
		C:   []float64{-1, 0},
		AUb: [][]float64{{0, 1}},
		BUb: []float64{1},
	}
	_, st, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if st != Unbounded {
		t.Errorf("status %v, want unbounded", st)
	}
}

func TestSolveUnconstrained(t *testing.T) {
	p := &Problem{C: []float64{1, 2}}
	sol, st, err := p.Solve()
	if err != nil || st != Optimal {
		t.Fatalf("%v %v", st, err)
	}
	if sol.Objective != 0 {
		t.Errorf("objective %v, want 0", sol.Objective)
	}
	p2 := &Problem{C: []float64{-1}}
	_, st, _ = p2.Solve()
	if st != Unbounded {
		t.Errorf("negative cost with no constraints should be unbounded, got %v", st)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// -x <= -2 means x >= 2; min x -> 2.
	p := &Problem{
		C:   []float64{1},
		AUb: [][]float64{{-1}},
		BUb: []float64{-2},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > 1e-8 {
		t.Errorf("objective %v, want 2", sol.Objective)
	}
}

func TestSolveDegenerateRedundantRows(t *testing.T) {
	// Duplicate equality rows exercise the artificial purge path.
	p := &Problem{
		C:   []float64{1, 1},
		AEq: [][]float64{{1, 1}, {1, 1}, {2, 2}},
		BEq: []float64{2, 2, 4},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > 1e-8 {
		t.Errorf("objective %v, want 2", sol.Objective)
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	p := &Problem{
		C:   []float64{1, 2},
		AEq: [][]float64{{1}},
		BEq: []float64{1},
	}
	if _, _, err := p.Solve(); err == nil {
		t.Error("want dimension error")
	}
	p2 := &Problem{C: nil}
	if _, _, err := p2.Solve(); err == nil {
		t.Error("want empty-cost error")
	}
}

func TestSolvePaperVertexLP(t *testing.T) {
	// The paper's LP (eq. 32-33): min Ka*a + Kb*b + Kc*g subject to
	// a+b+g <= 1, all >= 0. The optimum sits at a vertex: all mass on the
	// most negative coefficient, or the origin when all are positive.
	cases := []struct {
		k    [3]float64
		want [3]float64
	}{
		{[3]float64{-5, -1, -2}, [3]float64{1, 0, 0}},
		{[3]float64{3, -7, 1}, [3]float64{0, 1, 0}},
		{[3]float64{0.5, 0.2, 0.1}, [3]float64{0, 0, 0}},
		{[3]float64{1, 1, -0.001}, [3]float64{0, 0, 1}},
	}
	for _, tc := range cases {
		p := &Problem{
			C:   tc.k[:],
			AUb: [][]float64{{1, 1, 1}},
			BUb: []float64{1},
		}
		sol := solveOK(t, p)
		for j := 0; j < 3; j++ {
			if math.Abs(sol.X[j]-tc.want[j]) > 1e-8 {
				t.Errorf("K=%v: x=%v, want %v", tc.k, sol.X, tc.want)
				break
			}
		}
	}
}

func TestSolveFeasibilityProperty(t *testing.T) {
	// Property: for random bounded problems min cᵀx, 0 <= x_j <= u_j, the
	// solution must satisfy every bound and beat the origin when some
	// cost is negative.
	prop := func(c1, c2 int8, u1, u2 uint8) bool {
		u := []float64{float64(u1%10) + 1, float64(u2%10) + 1}
		c := []float64{float64(c1) / 16, float64(c2) / 16}
		p := &Problem{
			C:   c,
			AUb: [][]float64{{1, 0}, {0, 1}},
			BUb: u,
		}
		sol, st, err := p.Solve()
		if err != nil || st != Optimal {
			return false
		}
		for j := 0; j < 2; j++ {
			if sol.X[j] < -1e-9 || sol.X[j] > u[j]+1e-9 {
				return false
			}
		}
		// Closed form: x_j = u_j if c_j < 0 else 0.
		want := 0.0
		for j := 0; j < 2; j++ {
			if c[j] < 0 {
				want += c[j] * u[j]
			}
		}
		return math.Abs(sol.Objective-want) < 1e-7
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
	if Status(42).String() == "" {
		t.Error("unknown status should still print")
	}
}

func TestDualsKnownProblem(t *testing.T) {
	// min -x - y s.t. x + y <= 4, x <= 2: optimum (2, 2), obj -4.
	// Duals: lambda = (-1, 0)? Binding rows: both. y1 from c_B... solve:
	// A^T lambda = c at the optimal basis: lambda1 = -1 (row x+y<=4),
	// lambda2 = 0? Check: lambda1 + lambda2 = -1 (x column),
	// lambda1 = -1 (y column) -> lambda = (-1, 0).
	p := &Problem{
		C:   []float64{-1, -1},
		AUb: [][]float64{{1, 1}, {1, 0}},
		BUb: []float64{4, 2},
	}
	sol := solveOK(t, p)
	if len(sol.DualUb) != 2 {
		t.Fatalf("duals %v", sol.DualUb)
	}
	if math.Abs(sol.DualUb[0]+1) > 1e-8 || math.Abs(sol.DualUb[1]) > 1e-8 {
		t.Errorf("duals %v, want [-1 0]", sol.DualUb)
	}
	// Strong duality: obj = b^T lambda.
	if math.Abs(sol.Objective-(4*sol.DualUb[0]+2*sol.DualUb[1])) > 1e-8 {
		t.Errorf("duality gap: %v vs %v", sol.Objective, 4*sol.DualUb[0]+2*sol.DualUb[1])
	}
}

func TestDualsEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y = 3: optimum (3, 0), obj 3, dual nu = 1
	// (shadow price of the equality: relaxing b by 1 raises obj by 1).
	p := &Problem{
		C:   []float64{1, 2},
		AEq: [][]float64{{1, 1}},
		BEq: []float64{3},
	}
	sol := solveOK(t, p)
	if len(sol.DualEq) != 1 || math.Abs(sol.DualEq[0]-1) > 1e-8 {
		t.Errorf("dual %v, want [1]", sol.DualEq)
	}
}

func TestStrongDualityRandomProblems(t *testing.T) {
	// Random bounded-feasible LPs: verify strong duality, dual sign and
	// dual feasibility.
	rng := newTestRNG()
	for trial := 0; trial < 150; trial++ {
		n := 3 + rng.IntN(12)
		m := 2 + rng.IntN(12)
		p := &Problem{C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = rng.Float64()*4 - 2
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() * 2
			}
			p.AUb = append(p.AUb, row)
			p.BUb = append(p.BUb, 1+rng.Float64()*5)
		}
		// Box the variables so the problem is bounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.AUb = append(p.AUb, row)
			p.BUb = append(p.BUb, 3)
		}
		sol, st, err := p.Solve()
		if err != nil || st != Optimal {
			t.Fatalf("trial %d: %v %v", trial, st, err)
		}
		dualObj := 0.0
		for i, l := range sol.DualUb {
			if l > 1e-7 {
				t.Fatalf("trial %d: positive UB dual %v", trial, l)
			}
			dualObj += p.BUb[i] * l
		}
		if math.Abs(dualObj-sol.Objective) > 1e-6*(1+math.Abs(sol.Objective)) {
			t.Fatalf("trial %d: duality gap %v vs %v", trial, dualObj, sol.Objective)
		}
		// Dual feasibility: A^T lambda <= c.
		for j := 0; j < n; j++ {
			v := 0.0
			for i := range p.AUb {
				v += p.AUb[i][j] * sol.DualUb[i]
			}
			if v > p.C[j]+1e-6 {
				t.Fatalf("trial %d: dual infeasible at column %d: %v > %v", trial, j, v, p.C[j])
			}
		}
	}
}

func TestDualsWithNegativeRHS(t *testing.T) {
	// -x <= -2 (x >= 2); min x -> x = 2, obj 2. Shadow price of b=-2:
	// raising b (loosening toward 0) lowers the optimum: d(obj)/db = -1
	// ... in the <= orientation obj = -b so dual = -1 (non-positive).
	p := &Problem{
		C:   []float64{1},
		AUb: [][]float64{{-1}},
		BUb: []float64{-2},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.DualUb[0]+1) > 1e-8 {
		t.Errorf("dual %v, want -1", sol.DualUb[0])
	}
	if math.Abs(sol.Objective-(-2)*sol.DualUb[0]) > 1e-8 {
		t.Errorf("duality gap")
	}
}
