// Package lp implements a dense two-phase primal simplex solver for small
// linear programs in general form:
//
//	minimize    cᵀx
//	subject to  A_eq x  = b_eq
//	            A_ub x <= b_ub
//	            x >= 0
//
// The paper reduces its minimax problem (eq. 16) to the LP of eqs. 32-33
// over the point masses (alpha, beta, gamma); this package solves that LP
// directly so the vertex-enumeration shortcut used by the closed-form
// policy selector can be verified independently.
//
// The implementation uses Bland's pivoting rule, which guarantees
// termination (no cycling) at the cost of speed — irrelevant at the sizes
// involved (a handful of variables and constraints).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint set is empty.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("lp.Status(%d)", int(s))
	}
}

// ErrDimension is returned when problem matrices have inconsistent shapes.
var ErrDimension = errors.New("lp: inconsistent problem dimensions")

// Problem is an LP in general form. Nil slices denote absent blocks.
// All variables are implicitly non-negative.
type Problem struct {
	// C is the cost vector of length n.
	C []float64
	// AEq and BEq define equality constraints AEq·x = BEq.
	AEq [][]float64
	BEq []float64
	// AUb and BUb define inequality constraints AUb·x <= BUb.
	AUb [][]float64
	BUb []float64
}

// Solution is the result of a successful solve.
type Solution struct {
	// X is the optimal point, length n.
	X []float64
	// Objective is cᵀX.
	Objective float64
	// DualUb holds the dual multipliers of the inequality constraints
	// (non-positive for a minimization with <= rows); DualEq those of
	// the equalities (free sign). Strong duality gives
	// Objective = BUbᵀDualUb + BEqᵀDualEq.
	DualUb []float64
	DualEq []float64
}

const eps = 1e-9

// Solve runs two-phase simplex on p. It returns the solution and Optimal,
// or a nil solution and Infeasible/Unbounded. An error is returned only
// for malformed input.
func (p *Problem) Solve() (*Solution, Status, error) {
	n := len(p.C)
	if n == 0 {
		return nil, Optimal, errors.New("lp: empty cost vector")
	}
	if len(p.AEq) != len(p.BEq) || len(p.AUb) != len(p.BUb) {
		return nil, Infeasible, ErrDimension
	}
	for _, row := range p.AEq {
		if len(row) != n {
			return nil, Infeasible, ErrDimension
		}
	}
	for _, row := range p.AUb {
		if len(row) != n {
			return nil, Infeasible, ErrDimension
		}
	}

	mEq, mUb := len(p.AEq), len(p.AUb)
	m := mEq + mUb
	if m == 0 {
		// No constraints: optimum is 0 if c >= 0, else unbounded below.
		x := make([]float64, n)
		for _, cj := range p.C {
			if cj < -eps {
				return nil, Unbounded, nil
			}
		}
		return &Solution{X: x, Objective: 0}, Optimal, nil
	}

	// Build the standard-form tableau: n structural vars, mUb slacks,
	// m artificials. Rows are normalized so b >= 0.
	total := n + mUb + m
	a := make([][]float64, m)
	b := make([]float64, m)
	negated := make([]bool, m)
	for i := 0; i < mEq; i++ {
		row := make([]float64, total)
		copy(row, p.AEq[i])
		bi := p.BEq[i]
		if bi < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			bi = -bi
			negated[i] = true
		}
		a[i], b[i] = row, bi
	}
	for i := 0; i < mUb; i++ {
		row := make([]float64, total)
		copy(row, p.AUb[i])
		bi := p.BUb[i]
		sign := 1.0
		if bi < 0 {
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
			bi = -bi
			sign = -1
			negated[mEq+i] = true
		}
		row[n+i] = sign // slack (becomes surplus after negation)
		a[mEq+i], b[mEq+i] = row, bi
	}
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		a[i][n+mUb+i] = 1 // artificial
		basis[i] = n + mUb + i
	}

	t := &tableau{a: a, b: b, basis: basis, nStruct: n}

	// Phase 1: minimize the sum of artificials.
	phase1 := make([]float64, total)
	for j := n + mUb; j < total; j++ {
		phase1[j] = 1
	}
	st := t.iterate(phase1)
	if st == Unbounded {
		// Cannot happen with a bounded-below phase-1 objective.
		return nil, Infeasible, errors.New("lp: internal error, phase 1 unbounded")
	}
	if t.objective(phase1) > 1e-7 {
		return nil, Infeasible, nil
	}
	// Drive any artificials remaining in the basis out (or detect
	// redundant rows and leave them pinned at zero).
	t.purgeArtificials()

	// Phase 2: original objective over structural + slack columns only.
	phase2 := make([]float64, total)
	copy(phase2, p.C)
	t.forbidArtificials()
	st = t.iterate(phase2)
	if st == Unbounded {
		return nil, Unbounded, nil
	}
	x := make([]float64, n)
	for i, bi := range t.basis {
		if bi < n {
			x[bi] = t.b[i]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}

	// Recover dual multipliers from the final reduced costs: for a slack
	// or artificial column with unit coefficient on row i,
	// rc = -y_i in the transformed system; a negated row flips the sign
	// back to the original orientation.
	rc := t.reducedCosts(phase2)
	dualEq := make([]float64, mEq)
	for i := 0; i < mEq; i++ {
		y := -rc[n+mUb+i] // artificial column of row i
		if negated[i] {
			y = -y
		}
		dualEq[i] = y
	}
	// For UB rows no flip is needed: negating the row also negates the
	// slack coefficient, so the two sign changes cancel in the reduced
	// cost.
	dualUb := make([]float64, mUb)
	for i := 0; i < mUb; i++ {
		dualUb[i] = -rc[n+i] // slack column of row mEq+i
	}
	return &Solution{X: x, Objective: obj, DualUb: dualUb, DualEq: dualEq}, Optimal, nil
}

// tableau holds the simplex working state: constraint rows a·x = b with the
// identified basis columns.
type tableau struct {
	a       [][]float64
	b       []float64
	basis   []int
	nStruct int
	banned  []bool // columns excluded from entering (artificials in phase 2)
}

func (t *tableau) cols() int { return len(t.a[0]) }

// objective returns cᵀx at the current basic solution.
func (t *tableau) objective(c []float64) float64 {
	v := 0.0
	for i, bi := range t.basis {
		v += c[bi] * t.b[i]
	}
	return v
}

// reducedCosts computes c_j - c_Bᵀ B⁻¹ A_j for all columns given that the
// tableau rows are already expressed in the current basis.
func (t *tableau) reducedCosts(c []float64) []float64 {
	m, n := len(t.a), t.cols()
	rc := make([]float64, n)
	copy(rc, c)
	for i := 0; i < m; i++ {
		cb := c[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < n; j++ {
			rc[j] -= cb * row[j]
		}
	}
	return rc
}

// iterate runs primal simplex until optimality or unboundedness. It uses
// Dantzig pricing (most negative reduced cost) for speed and numerical
// quality, switching to Bland's rule after a stall to guarantee
// termination on degenerate problems. The ratio test breaks ties toward
// the largest pivot element, which keeps the tableau well conditioned
// when constraint rows mix very different magnitudes.
func (t *tableau) iterate(c []float64) Status {
	const maxIter = 20000
	const stallLimit = 200
	stall := 0
	prevObj := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		rc := t.reducedCosts(c)
		bland := stall >= stallLimit
		enter := -1
		best := -eps
		for j := 0; j < t.cols(); j++ {
			if t.banned != nil && t.banned[j] {
				continue
			}
			if rc[j] < best {
				enter = j
				if bland {
					break // Bland: first improving index
				}
				best = rc[j] // Dantzig: most negative
			}
		}
		if enter < 0 {
			return Optimal
		}
		leave := t.ratioTest(enter)
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
		if obj := t.objective(c); obj < prevObj-1e-12*(1+math.Abs(prevObj)) {
			prevObj = obj
			stall = 0
		} else {
			stall++
		}
	}
	return Optimal // iteration cap; Bland's rule should prevent this
}

// ratioTest returns the leaving row for the entering column, preferring
// the numerically largest pivot among (near-)minimal ratios, or -1 when
// the column is unbounded.
func (t *tableau) ratioTest(enter int) int {
	leave := -1
	best := math.Inf(1)
	bestPivot := 0.0
	for i := range t.a {
		piv := t.a[i][enter]
		if piv <= eps {
			continue
		}
		ratio := t.b[i] / piv
		switch {
		case ratio < best-eps*(1+math.Abs(best)):
			best, leave, bestPivot = ratio, i, piv
		case ratio < best+eps*(1+math.Abs(best)) && piv > bestPivot:
			// Tie: prefer the larger pivot element for stability.
			best, leave, bestPivot = ratio, i, piv
		}
	}
	return leave
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	t.b[row] *= inv
	pr[col] = 1 // exact
	for i := range t.a {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0 // exact
		t.b[i] -= f * t.b[row]
	}
	t.basis[row] = col
}

// purgeArtificials pivots basic artificial variables out of the basis where
// a nonzero structural/slack entry exists in their row; rows with no such
// entry are redundant and harmless (b must be ~0 after phase 1).
func (t *tableau) purgeArtificials() {
	nArtStart := t.cols() - len(t.a)
	for i := range t.basis {
		if t.basis[i] < nArtStart {
			continue
		}
		for j := 0; j < nArtStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
}

// forbidArtificials marks all artificial columns as non-entering for
// phase 2.
func (t *tableau) forbidArtificials() {
	nArtStart := t.cols() - len(t.a)
	t.banned = make([]bool, t.cols())
	for j := nArtStart; j < t.cols(); j++ {
		t.banned[j] = true
	}
}
