// Package drivecycle synthesizes stop sequences from a microscopic
// traffic mechanism instead of sampling a fitted distribution: trips
// traverse a route of signalized intersections, stop signs and
// congestion segments, plus occasional engine-on errand stops. Each
// mechanism produces stop lengths from first principles (signal phase
// geometry, queue discharge, congestion waves), which is where the
// heavy-tailed, multi-modal shape of Figure 3 comes from physically.
//
// The fleet package's mixture model is a statistical fit; this package
// is the mechanistic workload generator a downstream user would point at
// their own road network. The tests verify the two agree on the
// properties the experiments rely on (heavy tail, KS rejection of
// exponentiality, DET-region statistics).
package drivecycle

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"idlereduce/internal/dist"
)

// Signal models one signalized intersection with fixed timing.
type Signal struct {
	// CycleSec is the full cycle length (red + green).
	CycleSec float64
	// RedFrac is the red fraction of the cycle, in (0, 1).
	RedFrac float64
	// DischargeSecPerVeh is the headway per queued vehicle when the
	// light turns green (typically ~2 s).
	DischargeSecPerVeh float64
	// ArrivalsPerSec is the upstream vehicle arrival rate feeding the
	// queue during red.
	ArrivalsPerSec float64
}

// Validate checks signal timing.
func (s Signal) Validate() error {
	switch {
	case s.CycleSec <= 0:
		return fmt.Errorf("drivecycle: cycle %v", s.CycleSec)
	case s.RedFrac <= 0 || s.RedFrac >= 1:
		return fmt.Errorf("drivecycle: red fraction %v", s.RedFrac)
	case s.DischargeSecPerVeh < 0 || s.ArrivalsPerSec < 0:
		return fmt.Errorf("drivecycle: discharge %v arrivals %v", s.DischargeSecPerVeh, s.ArrivalsPerSec)
	}
	return nil
}

// StopAt samples the stop this signal causes for one arriving vehicle;
// 0 means the vehicle passed on green with no queue.
func (s Signal) StopAt(rng *rand.Rand) float64 {
	// Arrival phase uniform over the cycle.
	phase := rng.Float64() * s.CycleSec
	red := s.RedFrac * s.CycleSec
	if phase >= red {
		// Green arrival; any residual queue has dissipated in steady
		// state with utilization < 1, treat as free flow.
		return 0
	}
	// Arrived during red: wait out the remaining red plus the discharge
	// of the queue that accumulated ahead (Poisson arrivals during the
	// elapsed red time).
	remaining := red - phase
	elapsed := phase
	queued := poisson(rng, s.ArrivalsPerSec*elapsed)
	return remaining + float64(queued)*s.DischargeSecPerVeh
}

// Route is a fixed sequence of stop-causing features a trip traverses.
type Route struct {
	// Signals along the route.
	Signals []Signal
	// StopSigns is the number of all-way stops; each causes a short
	// queue wait.
	StopSigns int
	// StopSignMeanSec is the mean stop-sign wait (exponential).
	StopSignMeanSec float64
	// CongestionStopsMean is the expected number of stop-and-go waves
	// per trip (Poisson); each wave stops the vehicle briefly.
	CongestionStopsMean float64
	// CongestionMeanSec is the mean congestion-wave stop (exponential).
	CongestionMeanSec float64
}

// Validate checks the route.
func (r Route) Validate() error {
	for i, s := range r.Signals {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("signal %d: %w", i, err)
		}
	}
	switch {
	case r.StopSigns < 0:
		return errors.New("drivecycle: negative stop signs")
	case r.StopSigns > 0 && r.StopSignMeanSec <= 0:
		return errors.New("drivecycle: stop signs need a positive mean wait")
	case r.CongestionStopsMean < 0 || r.CongestionMeanSec < 0:
		return errors.New("drivecycle: negative congestion parameters")
	case r.CongestionStopsMean > 0 && r.CongestionMeanSec == 0:
		return errors.New("drivecycle: congestion waves need a positive mean")
	}
	return nil
}

// Trip samples the stop lengths of one traversal, in route order.
// Zero-length passes (green lights) are omitted.
func (r Route) Trip(rng *rand.Rand) []float64 {
	var stops []float64
	for _, s := range r.Signals {
		if y := s.StopAt(rng); y > 0 {
			stops = append(stops, y)
		}
	}
	for i := 0; i < r.StopSigns; i++ {
		// Queue waits behind discharging vehicles are Gamma-shaped
		// (sum of exponential headways); +1 s for the mandatory full stop.
		wait := dist.Gamma{K: 2, Theta: r.StopSignMeanSec / 2}.Sample(rng)
		stops = append(stops, wait+1)
	}
	waves := poisson(rng, r.CongestionStopsMean)
	for i := 0; i < waves; i++ {
		stops = append(stops, expSample(rng, r.CongestionMeanSec))
	}
	// Signals, stop signs and congestion interleave along a real route;
	// without this shuffle the assembly order would fake serial
	// correlation between stop types.
	rng.Shuffle(len(stops), func(i, j int) {
		stops[i], stops[j] = stops[j], stops[i]
	})
	return stops
}

// DayPlan describes one vehicle-day of driving.
type DayPlan struct {
	// Route is traversed once per trip.
	Route Route
	// TripsPerDay is the expected number of trips (Poisson, min 1).
	TripsPerDay float64
	// ErrandsPerDay is the expected number of engine-on errand stops per
	// day (drive-through, pickup, warm-up): the long-stop source.
	ErrandsPerDay float64
	// ErrandMeanSec and ErrandCV parameterize the lognormal errand
	// duration.
	ErrandMeanSec float64
	ErrandCV      float64
	// TrafficStateCV is the coefficient of variation of a per-trip
	// traffic-state factor multiplying every stop of the trip: a
	// congested trip lengthens all its stops together, which serially
	// correlates consecutive stops the way real traces are correlated.
	// Zero disables the mechanism.
	TrafficStateCV float64
	// MaxStopSec truncates all generated stops (instrumentation window).
	MaxStopSec float64
}

// Validate checks the plan.
func (d DayPlan) Validate() error {
	if err := d.Route.Validate(); err != nil {
		return err
	}
	switch {
	case d.TripsPerDay <= 0:
		return errors.New("drivecycle: trips/day must be positive")
	case d.ErrandsPerDay < 0:
		return errors.New("drivecycle: negative errands/day")
	case d.ErrandsPerDay > 0 && (d.ErrandMeanSec <= 0 || d.ErrandCV <= 0):
		return errors.New("drivecycle: errands need positive mean and cv")
	case d.TrafficStateCV < 0:
		return errors.New("drivecycle: negative traffic-state cv")
	case d.MaxStopSec <= 0:
		return errors.New("drivecycle: max stop must be positive")
	}
	return nil
}

// Day samples one day's stop sequence.
func (d DayPlan) Day(rng *rand.Rand) ([]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	trips := poisson(rng, d.TripsPerDay)
	if trips < 1 {
		trips = 1
	}
	var stops []float64
	for i := 0; i < trips; i++ {
		tripStops := d.Route.Trip(rng)
		if d.TrafficStateCV > 0 {
			// Persistent traffic state: this trip's congestion scales
			// every one of its stops, correlating them serially.
			factor := lognormalSample(rng, 1, d.TrafficStateCV)
			for j := range tripStops {
				tripStops[j] *= factor
			}
		}
		stops = append(stops, tripStops...)
	}
	errands := poisson(rng, d.ErrandsPerDay)
	for i := 0; i < errands; i++ {
		stops = append(stops, lognormalSample(rng, d.ErrandMeanSec, d.ErrandCV))
	}
	for i, y := range stops {
		if y > d.MaxStopSec {
			stops[i] = d.MaxStopSec
		}
		if stops[i] < 1 {
			stops[i] = 1 // sub-second stops are not recorded
		}
	}
	return stops, nil
}

// Week samples seven days.
func (d DayPlan) Week(rng *rand.Rand) ([]float64, error) {
	var stops []float64
	for day := 0; day < 7; day++ {
		ds, err := d.Day(rng)
		if err != nil {
			return nil, err
		}
		stops = append(stops, ds...)
	}
	return stops, nil
}

// UrbanCommute returns a representative city commute: a dozen signals of
// varied timing, a few stop signs, mild congestion and occasional long
// errand stops. Suitable as a drop-in workload for the policy
// experiments.
func UrbanCommute() DayPlan {
	signals := make([]Signal, 0, 12)
	for i := 0; i < 12; i++ {
		// Alternate minor/major intersections.
		cycle := 60.0
		red := 0.45
		if i%3 == 0 {
			cycle, red = 90, 0.55
		}
		signals = append(signals, Signal{
			CycleSec:           cycle,
			RedFrac:            red,
			DischargeSecPerVeh: 2.0,
			ArrivalsPerSec:     0.08,
		})
	}
	return DayPlan{
		Route: Route{
			Signals:             signals,
			StopSigns:           4,
			StopSignMeanSec:     3,
			CongestionStopsMean: 2.5,
			CongestionMeanSec:   8,
		},
		TripsPerDay:    2.2,
		ErrandsPerDay:  0.8,
		ErrandMeanSec:  420,
		ErrandCV:       1.1,
		TrafficStateCV: 0.45,
		MaxStopSec:     7200,
	}
}

// poisson samples a Poisson variate by inversion (small means) or
// normal approximation (large means).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction.
		v := mean + math.Sqrt(mean)*rng.NormFloat64() + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // unreachable for sane means; guards the loop
		}
	}
}

func expSample(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return -mean * math.Log(1-rng.Float64())
}

func lognormalSample(rng *rand.Rand, mean, cv float64) float64 {
	s2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - s2/2
	return math.Exp(mu + math.Sqrt(s2)*rng.NormFloat64())
}

// SuburbanCommute is a light-traffic variant of UrbanCommute: fewer
// signals, little congestion, occasional errands. Stops are short and the
// DET strategy is near-optimal here.
func SuburbanCommute() DayPlan {
	plan := UrbanCommute()
	signals := plan.Route.Signals[:6]
	for i := range signals {
		signals[i].RedFrac = 0.35
		signals[i].ArrivalsPerSec = 0.03
	}
	plan.Route.Signals = signals
	plan.Route.CongestionStopsMean = 0.5
	plan.Route.CongestionMeanSec = 5
	plan.ErrandsPerDay = 0.4
	return plan
}

// DowntownGridlock is a heavy-traffic variant: saturated signals, long
// congestion waves and frequent errand stops. TOI territory.
func DowntownGridlock() DayPlan {
	plan := UrbanCommute()
	for i := range plan.Route.Signals {
		plan.Route.Signals[i].RedFrac = 0.6
		plan.Route.Signals[i].ArrivalsPerSec = 0.15
	}
	plan.Route.CongestionStopsMean = 14
	plan.Route.CongestionMeanSec = 45
	plan.ErrandsPerDay = 2.5
	return plan
}
