package drivecycle

import (
	"math"
	"math/rand/v2"
	"testing"

	"idlereduce/internal/dist"
	"idlereduce/internal/skirental"
	"idlereduce/internal/stats"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(21, 42)) }

func TestSignalValidate(t *testing.T) {
	good := Signal{CycleSec: 60, RedFrac: 0.5, DischargeSecPerVeh: 2, ArrivalsPerSec: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Signal{
		{CycleSec: 0, RedFrac: 0.5},
		{CycleSec: 60, RedFrac: 0},
		{CycleSec: 60, RedFrac: 1},
		{CycleSec: 60, RedFrac: 0.5, DischargeSecPerVeh: -1},
		{CycleSec: 60, RedFrac: 0.5, ArrivalsPerSec: -1},
	}
	for i, s := range bads {
		if err := s.Validate(); err == nil {
			t.Errorf("bad signal %d accepted", i)
		}
	}
}

func TestSignalStopProbability(t *testing.T) {
	// With uniform arrival phase, P(stop) = RedFrac.
	s := Signal{CycleSec: 80, RedFrac: 0.4, DischargeSecPerVeh: 2, ArrivalsPerSec: 0.05}
	rng := testRNG()
	const n = 100_000
	stopped := 0
	for i := 0; i < n; i++ {
		if s.StopAt(rng) > 0 {
			stopped++
		}
	}
	got := float64(stopped) / n
	if math.Abs(got-0.4) > 0.01 {
		t.Errorf("stop probability %v, want 0.4", got)
	}
}

func TestSignalStopBounded(t *testing.T) {
	// A stop can never exceed the red phase plus the worst-case queue
	// discharge accumulated during it (statistically bounded; check a
	// generous cap).
	s := Signal{CycleSec: 90, RedFrac: 0.5, DischargeSecPerVeh: 2, ArrivalsPerSec: 0.1}
	rng := testRNG()
	red := s.RedFrac * s.CycleSec
	for i := 0; i < 50_000; i++ {
		y := s.StopAt(rng)
		if y < 0 {
			t.Fatalf("negative stop %v", y)
		}
		// 45 s red, mean queue <= 4.5 cars => discharge usually < 30 s;
		// allow 10x the mean for Poisson tails.
		if y > red+10*s.ArrivalsPerSec*red*s.DischargeSecPerVeh+20 {
			t.Fatalf("implausible signal stop %v", y)
		}
	}
}

func TestRouteValidate(t *testing.T) {
	bads := []Route{
		{Signals: []Signal{{CycleSec: -1, RedFrac: 0.5}}},
		{StopSigns: -1},
		{StopSigns: 2, StopSignMeanSec: 0},
		{CongestionStopsMean: -1},
		{CongestionStopsMean: 1, CongestionMeanSec: 0},
	}
	for i, r := range bads {
		if err := r.Validate(); err == nil {
			t.Errorf("bad route %d accepted", i)
		}
	}
}

func TestDayPlanValidate(t *testing.T) {
	good := UrbanCommute()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mut := func(f func(*DayPlan)) DayPlan {
		d := UrbanCommute()
		f(&d)
		return d
	}
	bads := []DayPlan{
		mut(func(d *DayPlan) { d.TripsPerDay = 0 }),
		mut(func(d *DayPlan) { d.ErrandsPerDay = -1 }),
		mut(func(d *DayPlan) { d.ErrandMeanSec = 0 }),
		mut(func(d *DayPlan) { d.ErrandCV = 0 }),
		mut(func(d *DayPlan) { d.MaxStopSec = 0 }),
	}
	for i, d := range bads {
		if err := d.Validate(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestDayProducesBoundedStops(t *testing.T) {
	d := UrbanCommute()
	rng := testRNG()
	stops, err := d.Day(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(stops) == 0 {
		t.Fatal("no stops generated")
	}
	for _, y := range stops {
		if y < 1 || y > d.MaxStopSec {
			t.Errorf("stop %v outside [1, %v]", y, d.MaxStopSec)
		}
	}
}

func TestWeekAggregates(t *testing.T) {
	d := UrbanCommute()
	rng := testRNG()
	week, err := d.Week(rng)
	if err != nil {
		t.Fatal(err)
	}
	day, err := d.Day(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(week) < 4*len(day) {
		t.Errorf("week has %d stops vs day %d: too few", len(week), len(day))
	}
}

func TestUrbanCommuteHeavyTailedRejectsExponential(t *testing.T) {
	// The mechanistic generator must reproduce the Figure 3 property.
	d := UrbanCommute()
	rng := testRNG()
	var all []float64
	for v := 0; v < 40; v++ {
		week, err := d.Week(rng)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, week...)
	}
	null := dist.NewExponentialMean(stats.Mean(all))
	res, err := stats.KSOneSample(all, null.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejects(0.01) {
		t.Errorf("exponential not rejected: D=%v p=%v", res.D, res.P)
	}
}

func TestUrbanCommuteProposedPolicyWins(t *testing.T) {
	// End-to-end: on mechanistic traffic the proposed policy must not
	// lose to the classic baselines, mirroring the Figure 4 claim.
	d := UrbanCommute()
	rng := testRNG()
	week, err := d.Week(rng)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 9; v++ { // thicker sample
		more, err := d.Week(rng)
		if err != nil {
			t.Fatal(err)
		}
		week = append(week, more...)
	}
	const B = 28.0
	prop, err := skirental.NewConstrainedFromStops(B, week)
	if err != nil {
		t.Fatal(err)
	}
	crP := skirental.TraceCR(prop, week)
	for _, base := range []skirental.Policy{
		skirental.NewTOI(B), skirental.NewDET(B), skirental.NewNRand(B),
	} {
		if crB := skirental.TraceCR(base, week); crP > crB+1e-9 {
			t.Errorf("proposed %v loses to %s %v", crP, base.Name(), crB)
		}
	}
	// The long errand stops must also sink NEV.
	if crN := skirental.TraceCR(skirental.NewNEV(B), week); crN < crP {
		t.Errorf("NEV %v should lose to proposed %v on errand-heavy traffic", crN, crP)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := testRNG()
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 60_000
		var sum, sq float64
		for i := 0; i < n; i++ {
			v := float64(poisson(rng, mean))
			sum += v
			sq += v * v
		}
		m := sum / n
		variance := sq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.05 {
			t.Errorf("mean %v: sample mean %v", mean, m)
		}
		if math.Abs(variance-mean) > 0.12*mean+0.1 {
			t.Errorf("mean %v: sample variance %v (Poisson: var = mean)", mean, variance)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestExpAndLognormalSamplers(t *testing.T) {
	rng := testRNG()
	const n = 200_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += expSample(rng, 25)
	}
	if math.Abs(sum/n-25) > 0.5 {
		t.Errorf("exp mean %v", sum/n)
	}
	sum = 0
	for i := 0; i < n; i++ {
		sum += lognormalSample(rng, 100, 0.8)
	}
	if math.Abs(sum/n-100) > 2.5 {
		t.Errorf("lognormal mean %v", sum/n)
	}
	if expSample(rng, 0) != 0 {
		t.Error("zero-mean exp should be 0")
	}
}

func TestPresetOrdering(t *testing.T) {
	// Mean stop length and stop counts must order suburb < urban <
	// downtown; all presets validate.
	rng := testRNG()
	means := map[string]float64{}
	for _, tc := range []struct {
		name string
		plan DayPlan
	}{
		{"suburb", SuburbanCommute()},
		{"urban", UrbanCommute()},
		{"downtown", DowntownGridlock()},
	} {
		if err := tc.plan.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var all []float64
		for i := 0; i < 30; i++ {
			week, err := tc.plan.Week(rng)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, week...)
		}
		means[tc.name] = stats.Mean(all)
	}
	if !(means["suburb"] < means["urban"] && means["urban"] < means["downtown"]) {
		t.Errorf("mean stop ordering wrong: %v", means)
	}
}

func TestPresetsSelectDifferentVertices(t *testing.T) {
	// The suburb should land in DET territory and downtown in TOI (or at
	// least a different, heavier choice), mirroring the adaptive example.
	rng := testRNG()
	choiceOf := func(plan DayPlan) skirental.Choice {
		var all []float64
		for i := 0; i < 20; i++ {
			week, err := plan.Week(rng)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, week...)
		}
		p, err := skirental.NewConstrainedFromStops(28, all)
		if err != nil {
			t.Fatal(err)
		}
		return p.Choice()
	}
	suburb := choiceOf(SuburbanCommute())
	downtown := choiceOf(DowntownGridlock())
	if suburb != skirental.ChoiceDET {
		t.Errorf("suburb selects %v, want DET", suburb)
	}
	if downtown == skirental.ChoiceDET {
		t.Errorf("downtown should not select DET, got %v", downtown)
	}
}

func TestTrafficStateCorrelatesStops(t *testing.T) {
	// With the per-trip traffic state on, consecutive stops must show
	// serial correlation (Ljung-Box rejects); with it off they must not.
	rng := testRNG()
	trace := func(cv float64) []float64 {
		plan := UrbanCommute()
		plan.TrafficStateCV = cv
		plan.ErrandsPerDay = 0 // errands are rare spikes that mask the test
		var all []float64
		for len(all) < 3000 {
			week, err := plan.Week(rng)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, week...)
		}
		return all
	}
	on, err := stats.LjungBox(trace(0.6), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !on.Rejects(0.01) {
		t.Errorf("traffic state on: no serial correlation detected (p=%v)", on.P)
	}
	off, err := stats.LjungBox(trace(0), 10)
	if err != nil {
		t.Fatal(err)
	}
	if off.Rejects(0.001) {
		t.Errorf("traffic state off: unexpected correlation (p=%v)", off.P)
	}
}
